// Work-stealing task runtime tests (src/task/runtime.hpp): scheduling
// (submission, stealing, overflow, shutdown-with-pending-work), the
// determinism contract (chunk boundaries and reduction order independent
// of worker count), and exception propagation. The steal-heavy cases are
// the TSan stress surface for the runtime (tsan label); the determinism
// cases pin the contract the whole epoch pipeline and the multi-chip
// layer are built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <latch>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "task/runtime.hpp"
#include "util/lock_rank.hpp"
#include "util/mutex.hpp"

namespace ot = odrl::task;

namespace {

constexpr std::size_t kWidths[] = {1, 2, 4, 8};

/// Serial reference for the reduce cases: same per-index value, summed in
/// index order (the runtime's fold is chunk-ordered, which for grain >= n
/// degenerates to exactly this).
double index_value(std::size_t i) {
  return 1.0 + 1e-7 * static_cast<double>(i * i % 1013);
}

}  // namespace

TEST(TaskRuntime, ResolveWorkersContract) {
  EXPECT_GE(ot::Runtime::resolve_workers(0), 1u);
  EXPECT_EQ(ot::Runtime::resolve_workers(1), 1u);
  EXPECT_EQ(ot::Runtime::resolve_workers(6), 6u);
  EXPECT_THROW(ot::Runtime::resolve_workers(static_cast<std::size_t>(-1)),
               std::invalid_argument);
  EXPECT_THROW(ot::Runtime::resolve_workers(4097), std::invalid_argument);
}

TEST(TaskRuntime, WidthOneExecutesInlineOnCaller) {
  ot::Runtime rt(1);
  EXPECT_EQ(rt.size(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> same{true};
  rt.parallel_for(64, 8, [&](std::size_t, std::size_t) {
    if (std::this_thread::get_id() != caller) same = false;
  });
  EXPECT_TRUE(same);
}

TEST(TaskRuntime, ParallelForCoversEveryIndexOnce) {
  for (std::size_t width : kWidths) {
    ot::Runtime rt(width);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{64}, std::size_t{1000}}) {
      for (std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{9},
                                std::size_t{64}, std::size_t{4096}}) {
        std::vector<std::atomic<int>> hits(n);
        rt.parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
          ASSERT_LE(begin, end);
          ASSERT_LE(end, n);
          for (std::size_t i = begin; i < end; ++i) hits[i]++;
        });
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "width=" << width << " n=" << n << " grain=" << grain
              << " index=" << i;
        }
      }
    }
  }
}

TEST(TaskRuntime, ChunkBoundariesDependOnlyOnGrain) {
  // Record the chunk partition at every width; all must be identical to
  // the width-1 (inline) partition. This is the determinism contract's
  // load-bearing half: identical chunks + ordered fold = identical bits.
  constexpr std::size_t kN = 333;
  constexpr std::size_t kGrain = 16;
  auto partition = [&](std::size_t width) {
    ot::Runtime rt(width);
    std::vector<std::pair<std::size_t, std::size_t>> chunks(
        (kN + kGrain - 1) / kGrain);
    rt.parallel_for(kN, kGrain, [&](std::size_t begin, std::size_t end) {
      chunks[begin / kGrain] = {begin, end};
    });
    return chunks;
  };
  const auto reference = partition(1);
  for (std::size_t width : kWidths) {
    EXPECT_EQ(partition(width), reference) << "width=" << width;
  }
}

TEST(TaskRuntime, ReduceIsBitIdenticalAcrossWorkerCounts) {
  constexpr std::size_t kN = 2000;
  constexpr std::size_t kGrain = 32;
  auto map = [](std::size_t begin, std::size_t end) {
    double s = 0.0;
    for (std::size_t i = begin; i < end; ++i) s += index_value(i);
    return s;
  };
  auto combine = [](double a, double b) { return a + b; };

  ot::Runtime serial(1);
  const double want = serial.parallel_reduce(kN, kGrain, 0.0, map, combine);
  for (std::size_t width : kWidths) {
    ot::Runtime rt(width);
    std::vector<double> scratch;
    for (int repeat = 0; repeat < 5; ++repeat) {
      const double got =
          rt.parallel_reduce(kN, kGrain, 0.0, map, combine, scratch);
      // Bit-identical, not just close: the fold order is fixed.
      ASSERT_EQ(got, want) << "width=" << width << " repeat=" << repeat;
    }
  }
}

TEST(TaskRuntime, SubmitRunsEveryTaskAndGroupIsReusable) {
  ot::Runtime rt(4);
  std::atomic<int> counter{0};
  auto bump = [&] { counter++; };
  std::vector<decltype(bump)> tasks(64, bump);

  ot::Runtime::Group group;
  for (auto& t : tasks) rt.submit(group, t);
  rt.wait(group);
  EXPECT_EQ(counter.load(), 64);

  // Same group, second batch: the barrier is reusable after wait().
  for (auto& t : tasks) rt.submit(group, t);
  rt.wait(group);
  EXPECT_EQ(counter.load(), 128);
}

TEST(TaskRuntime, WaitOnEmptyGroupReturnsImmediately) {
  ot::Runtime rt(2);
  ot::Runtime::Group group;
  rt.wait(group);  // nothing submitted: must not block
  rt.parallel_for(0, 8, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(TaskRuntime, OversubscribedSubmissionOverflowsInlineWithoutLoss) {
  // Rings of capacity 1 and a width-2 runtime: most of a 500-task burst
  // cannot fit and must run inline on the submitter (counted as
  // overflows), but every task runs exactly once.
  ot::RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.deque_capacity = 1;
  cfg.channel_capacity = 1;
  ot::Runtime rt(cfg);

  std::atomic<int> counter{0};
  auto bump = [&] { counter++; };
  std::vector<decltype(bump)> tasks(500, bump);
  ot::Runtime::Group group;
  for (auto& t : tasks) rt.submit(group, t);
  rt.wait(group);

  EXPECT_EQ(counter.load(), 500);
  EXPECT_GT(rt.stats().overflows, 0u);
  EXPECT_EQ(rt.stats().tasks_executed, 500u);
}

TEST(TaskRuntime, StealHeavyStressDistributesWork) {
  // Deterministic steal forcing. The outer task is claimed by a spawned
  // worker (the main thread submits and then does not help until the
  // outer task is already running). On that worker, three inner tasks go
  // to its *own deque*; it then helps its inner group and blocks inside
  // the first one on a 3-party latch. The other two tasks can only reach
  // the latch if two *other* workers steal them -- so reaching wait()'s
  // return proves two steals, and the counters must agree.
  ot::Runtime rt(4);
  std::atomic<bool> outer_started{false};
  std::latch rendezvous(3);
  std::atomic<int> ran{0};

  auto blocker = [&] {
    ran++;
    rendezvous.arrive_and_wait();
  };
  std::vector<decltype(blocker)> blockers(3, blocker);

  auto outer = [&] {
    outer_started = true;
    ot::Runtime::Group inner;
    for (auto& b : blockers) rt.submit(inner, b);
    rt.wait(inner);
  };

  ot::Runtime::Group group;
  rt.submit(group, outer);
  while (!outer_started) std::this_thread::yield();
  rt.wait(group);

  EXPECT_EQ(ran.load(), 3);
  EXPECT_GE(rt.stats().steals, 2u);
}

TEST(TaskRuntime, ParallelForPropagatesExceptionsAndStaysUsable) {
  for (std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    ot::Runtime rt(width);
    EXPECT_THROW(
        rt.parallel_for(100, 10,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 50) throw std::runtime_error("boom");
                        }),
        std::runtime_error)
        << "width=" << width;

    // The runtime survives: the next job runs normally.
    std::atomic<int> counter{0};
    rt.parallel_for(100, 10,
                    [&](std::size_t begin, std::size_t end) {
                      counter += static_cast<int>(end - begin);
                    });
    EXPECT_EQ(counter.load(), 100) << "width=" << width;
  }
}

TEST(TaskRuntime, SubmittedTaskExceptionReachesWaiter) {
  ot::Runtime rt(2);
  auto thrower = [] { throw std::runtime_error("task failed"); };
  ot::Runtime::Group group;
  rt.submit(group, thrower);
  EXPECT_THROW(rt.wait(group), std::runtime_error);
}

TEST(TaskRuntime, ShutdownDrainsPendingTasks) {
  // Width 1 spawns no workers, so unwaited external submissions sit in
  // the channel until the destructor's drain. Nothing may be lost.
  std::atomic<int> counter{0};
  auto bump = [&] { counter++; };
  std::vector<decltype(bump)> tasks(32, bump);
  ot::Runtime::Group group;  // outlives the runtime
  {
    ot::Runtime rt(1);
    for (auto& t : tasks) rt.submit(group, t);
    // No wait: the destructor owns completion.
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(TaskRuntime, NestedParallelReduceInsideSubmittedTasks) {
  // The multi-chip shape: whole-run tasks that internally parallel_reduce
  // on the *same* runtime. Results must equal the serial reference.
  ot::Runtime rt(4);
  constexpr std::size_t kN = 512;
  double serial_a = 0.0, serial_b = 0.0;
  for (std::size_t i = 0; i < kN; ++i) serial_a += index_value(i);
  for (std::size_t i = 0; i < kN; ++i) serial_b += index_value(i + kN);

  auto map_a = [](std::size_t begin, std::size_t end) {
    double s = 0.0;
    for (std::size_t i = begin; i < end; ++i) s += index_value(i);
    return s;
  };
  auto map_b = [](std::size_t begin, std::size_t end) {
    double s = 0.0;
    for (std::size_t i = begin; i < end; ++i) s += index_value(i + kN);
    return s;
  };
  auto combine = [](double a, double b) { return a + b; };

  double got_a = 0.0, got_b = 0.0;
  auto chip_a = [&] {
    got_a = rt.parallel_reduce(kN, kN, 0.0, map_a, combine);
  };
  auto chip_b = [&] {
    got_b = rt.parallel_reduce(kN, kN, 0.0, map_b, combine);
  };
  ot::Runtime::Group group;
  rt.submit(group, chip_a);
  rt.submit(group, chip_b);
  rt.wait(group);

  EXPECT_EQ(got_a, serial_a);
  EXPECT_EQ(got_b, serial_b);
}

TEST(TaskRuntime, PinnedWorkersRunNormally) {
  ot::RuntimeConfig cfg;
  cfg.workers = 2;
  cfg.pin_workers = true;  // best-effort; must never fail the run
  ot::Runtime rt(cfg);
  std::atomic<int> counter{0};
  rt.parallel_for(100, 10, [&](std::size_t begin, std::size_t end) {
    counter += static_cast<int>(end - begin);
  });
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskRuntime, StatsAccumulateAndReset) {
  ot::Runtime rt(2);
  rt.parallel_for(100, 10, [](std::size_t, std::size_t) {});
  EXPECT_GT(rt.stats().tasks_executed, 0u);
  rt.reset_stats();
  EXPECT_EQ(rt.stats().tasks_executed, 0u);
  EXPECT_EQ(rt.stats().steals, 0u);
  EXPECT_EQ(rt.stats().overflows, 0u);
}

TEST(TaskRuntime, ManyConsecutiveJobsStayCorrect) {
  ot::Runtime rt(4);
  std::vector<double> scratch;
  auto combine = [](double a, double b) { return a + b; };
  for (int job = 0; job < 200; ++job) {
    const std::size_t n = 64 + static_cast<std::size_t>(job % 7) * 13;
    const double got = rt.parallel_reduce(
        n, 8, 0.0,
        [](std::size_t begin, std::size_t end) {
          return static_cast<double>(end - begin);
        },
        combine, scratch);
    ASSERT_EQ(got, static_cast<double>(n)) << "job=" << job;
  }
}

// ---------------------------------------------------------------------------
// Lock-rank checker (src/util/lock_rank.hpp). The checker is compiled into
// util::Mutex only under ODRL_CHECKED; both tests skip cleanly in release
// builds via util::lock_rank_enabled() so the suite's pass/fail shape is
// identical across build types.

TEST(LockRank, SeededInversionAborts) {
  if (!odrl::util::lock_rank_enabled()) {
    GTEST_SKIP() << "lock-rank checker compiled out (ODRL_CHECKED off)";
  }
  // Death test: acquiring a lower-ranked mutex while a higher-ranked one is
  // held must abort with the "lock-rank violation" report naming both
  // acquisition sites. Runs in a forked child; the parent matches stderr.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  odrl::util::Mutex high(odrl::util::LockRank::kScheduler, "test-high");
  odrl::util::Mutex low(odrl::util::LockRank::kRing, "test-low");
  EXPECT_DEATH(
      {
        odrl::util::MutexLock outer(high);
        odrl::util::MutexLock inner(low);  // kRing(40) under kScheduler(60)
      },
      "lock-rank violation");
}

TEST(LockRank, NestedRuntimeWaitHasNoFalsePositive) {
  if (!odrl::util::lock_rank_enabled()) {
    GTEST_SKIP() << "lock-rank checker compiled out (ODRL_CHECKED off)";
  }
  // The deepest lock nesting the runtime produces: submitted tasks that
  // internally parallel_for on the same runtime, so Runtime::wait() parks
  // (kScheduler) while workers cycle ring locks (kRing) and group error
  // locks (kGroup) concurrently. Under ODRL_CHECKED every acquisition runs
  // through the checker; any false positive aborts the whole test binary.
  ot::Runtime rt(4);
  std::atomic<int> counter{0};
  auto nested_job = [&] {
    rt.parallel_for(64, 8, [&](std::size_t begin, std::size_t end) {
      counter += static_cast<int>(end - begin);
    });
  };
  for (int round = 0; round < 16; ++round) {
    ot::Runtime::Group group;
    for (int t = 0; t < 4; ++t) rt.submit(group, nested_job);
    rt.wait(group);
  }
  EXPECT_EQ(counter.load(), 16 * 4 * 64);
}
