// Unit tests for src/util: RNG determinism and distribution sanity,
// streaming statistics, histograms, table/CSV rendering, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ou = odrl::util;

// ---------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameSequence) {
  ou::Rng a(42);
  ou::Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  ou::Rng a(1);
  ou::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  ou::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  ou::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  ou::Rng rng(7);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformMeanIsCentered) {
  ou::Rng rng(11);
  ou::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, BelowCoversAllResidues) {
  ou::Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BelowZeroThrows) {
  ou::Rng rng(3);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BetweenInclusiveBounds) {
  ou::Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMomentsMatch) {
  ou::Rng rng(13);
  ou::RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
  ou::Rng rng(13);
  ou::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.gaussian(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, GaussianNegativeStddevThrows) {
  ou::Rng rng(13);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  ou::Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyTracksP) {
  ou::Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  ou::Rng rng(19);
  ou::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  ou::Rng rng(19);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  ou::Rng parent(23);
  ou::Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  ou::Rng a(23);
  ou::Rng b(23);
  ou::Rng ca = a.fork();
  ou::Rng cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

// ------------------------------------------------------- RunningStats

TEST(RunningStats, EmptyIsZero) {
  ou::RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  ou::RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  ou::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  ou::Rng rng(29);
  ou::RunningStats all;
  ou::RunningStats a;
  ou::RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  ou::RunningStats a;
  a.add(1.0);
  a.add(2.0);
  ou::RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  ou::RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

// ------------------------------------------------------------- Ema

TEST(Ema, FirstSamplePrimes) {
  ou::Ema e(0.5);
  EXPECT_FALSE(e.primed());
  e.update(10.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ema, ConvergesToConstant) {
  ou::Ema e(0.3);
  for (int i = 0; i < 100; ++i) e.update(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ema, AlphaOneTracksExactly) {
  ou::Ema e(1.0);
  e.update(1.0);
  e.update(42.0);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(Ema, StepResponse) {
  ou::Ema e(0.5);
  e.update(0.0);
  e.update(1.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.5);
  e.update(1.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.75);
}

TEST(Ema, InvalidAlphaThrows) {
  EXPECT_THROW(ou::Ema(0.0), std::invalid_argument);
  EXPECT_THROW(ou::Ema(1.5), std::invalid_argument);
  EXPECT_THROW(ou::Ema(-0.1), std::invalid_argument);
}

TEST(Ema, ResetUnprimes) {
  ou::Ema e(0.5);
  e.update(3.0);
  e.reset();
  EXPECT_FALSE(e.primed());
  e.update(9.0);
  EXPECT_DOUBLE_EQ(e.value(), 9.0);
}

// --------------------------------------------------------- Histogram

TEST(Histogram, BinningAndClamping) {
  ou::Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(15.0);   // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, BinCenters) {
  ou::Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(ou::Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(ou::Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(ou::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, OutOfRangeAccessorsThrow) {
  ou::Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.count(4), std::out_of_range);
  EXPECT_THROW(h.bin_center(4), std::out_of_range);
}

// -------------------------------------------------------- percentile

TEST(Percentile, MedianOfOddSet) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(ou::percentile(v, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(ou::percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(ou::percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ou::percentile(v, 100.0), 10.0);
}

TEST(Percentile, SingleSample) {
  const std::vector<double> v{5.0};
  EXPECT_DOUBLE_EQ(ou::percentile(v, 99.0), 5.0);
}

TEST(Percentile, RejectsBadInput) {
  const std::vector<double> empty;
  const std::vector<double> v{1.0};
  EXPECT_THROW(ou::percentile(empty, 50.0), std::invalid_argument);
  EXPECT_THROW(ou::percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW(ou::percentile(v, 101.0), std::invalid_argument);
}

TEST(MeanGeomean, BasicValues) {
  const std::vector<double> v{1.0, 2.0, 4.0};
  EXPECT_NEAR(ou::mean_of(v), 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(ou::geomean_of(v), 2.0, 1e-12);
  EXPECT_EQ(ou::mean_of({}), 0.0);
}

TEST(Geomean, RejectsNonPositive) {
  const std::vector<double> v{1.0, 0.0};
  EXPECT_THROW(ou::geomean_of(v), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW(ou::geomean_of(empty), std::invalid_argument);
}

// ------------------------------------------------------------- Table

TEST(Table, RendersAlignedColumns) {
  ou::Table t({"name", "value"});
  t.add_row({"alpha", "1.0"});
  t.add_row({"longer-name", "22.5"});
  const std::string out = t.render("title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  // All data lines have equal width.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  ou::Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(Table, TooManyCellsRejected) {
  ou::Table t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(ou::Table({}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(ou::Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(ou::Table::fmt(2.0, 0), "2");
  EXPECT_EQ(ou::Table::sci(12345.0, 2), "1.23e+04");
}

// --------------------------------------------------------------- CSV

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(ou::csv_escape("plain"), "plain");
  EXPECT_EQ(ou::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(ou::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(ou::csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  ou::CsvWriter w(os);
  w.write_row({"epoch", "power"});
  w.write_row("run1", {1.5, 2.5});
  EXPECT_EQ(w.rows_written(), 2u);
  EXPECT_EQ(os.str(), "epoch,power\nrun1,1.5,2.5\n");
}

// --------------------------------------------------------------- CLI

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--cores=64", "--budget", "0.5", "pos1",
                        "--verbose"};
  ou::CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("cores", 0), 64);
  EXPECT_DOUBLE_EQ(args.get_double("budget", 0.0), 0.5);
  EXPECT_TRUE(args.get_bool("verbose", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  ou::CliArgs args(1, argv);
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_FALSE(args.has("n"));
}

TEST(Cli, BadNumbersThrow) {
  const char* argv[] = {"prog", "--n=abc"};
  ou::CliArgs args(2, argv);
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("n", 0.0), std::invalid_argument);
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=maybe"};
  ou::CliArgs args(4, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_THROW(args.get_bool("c", false), std::invalid_argument);
}

// --------------------------------------------------------------- Log

TEST(Log, FiltersBelowLevel) {
  std::ostringstream os;
  ou::Logger::set_stream(os);
  ou::Logger::set_level(ou::LogLevel::kWarn);
  ou::LogLine(ou::LogLevel::kDebug, "mod") << "hidden";
  ou::LogLine(ou::LogLevel::kError, "mod") << "shown";
  ou::Logger::set_stream(std::clog);
  EXPECT_EQ(os.str().find("hidden"), std::string::npos);
  EXPECT_NE(os.str().find("shown"), std::string::npos);
  EXPECT_NE(os.str().find("[ERROR]"), std::string::npos);
}

TEST(Log, LevelNames) {
  EXPECT_EQ(ou::to_string(ou::LogLevel::kInfo), "INFO");
  EXPECT_EQ(ou::to_string(ou::LogLevel::kTrace), "TRACE");
}
