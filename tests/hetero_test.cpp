// Tests for heterogeneous core-type layouts and the per-core-parameter
// simulator path.
#include <gtest/gtest.h>

#include <memory>

#include "arch/chip_config.hpp"
#include "arch/hetero.hpp"
#include "core/odrl_controller.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

#include "loop_helpers.hpp"

namespace oa = odrl::arch;
namespace oc = odrl::core;
namespace os = odrl::sim;
namespace ow = odrl::workload;
using odrl::test::decide;
using odrl::test::step;

TEST(Hetero, CoreTypesAreValidAndDistinct) {
  const oa::CoreType big = oa::big_core();
  const oa::CoreType little = oa::little_core();
  EXPECT_NO_THROW(big.params.validate());
  EXPECT_NO_THROW(little.params.validate());
  EXPECT_GT(big.params.issue_width, little.params.issue_width);
  EXPECT_GT(big.params.c_eff_nf, little.params.c_eff_nf);
  EXPECT_EQ(big.name, "big");
  EXPECT_EQ(little.name, "little");
}

TEST(Hetero, StripedLayoutAlternates) {
  const auto layout =
      oa::striped_layout({oa::big_core(), oa::little_core()}, 6);
  ASSERT_EQ(layout.params.size(), 6u);
  ASSERT_EQ(layout.labels.size(), 6u);
  EXPECT_EQ(layout.labels[0], "big");
  EXPECT_EQ(layout.labels[1], "little");
  EXPECT_EQ(layout.labels[4], "big");
  EXPECT_DOUBLE_EQ(layout.params[0].issue_width, 3.0);
  EXPECT_DOUBLE_EQ(layout.params[1].issue_width, 1.0);
}

TEST(Hetero, ClusteredLayoutSplits) {
  const auto layout = oa::clustered_layout(3, 8);
  EXPECT_EQ(layout.labels[2], "big");
  EXPECT_EQ(layout.labels[3], "little");
  EXPECT_EQ(layout.labels[7], "little");
}

TEST(Hetero, LayoutValidation) {
  EXPECT_THROW(oa::striped_layout({}, 4), std::invalid_argument);
  EXPECT_THROW(oa::striped_layout({oa::big_core()}, 0),
               std::invalid_argument);
  EXPECT_THROW(oa::clustered_layout(5, 4), std::invalid_argument);
  EXPECT_THROW(oa::clustered_layout(0, 0), std::invalid_argument);
}

TEST(Hetero, MaxChipPowerBetweenAllBigAndAllLittle) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  const auto mixed = oa::clustered_layout(4, 8);
  const auto all_big = oa::clustered_layout(8, 8);
  const auto all_little = oa::clustered_layout(0, 8);
  const double p_mixed = oa::hetero_max_chip_power_w(chip, mixed.params);
  const double p_big = oa::hetero_max_chip_power_w(chip, all_big.params);
  const double p_little =
      oa::hetero_max_chip_power_w(chip, all_little.params);
  EXPECT_GT(p_big, p_mixed);
  EXPECT_GT(p_mixed, p_little);
  EXPECT_THROW(
      oa::hetero_max_chip_power_w(chip, std::vector<oa::CoreParams>(4)),
      std::invalid_argument);
}

TEST(Hetero, SimulatorUsesPerCoreParams) {
  const oa::ChipConfig chip = oa::ChipConfig::make(2, 0.6);
  const auto layout = oa::clustered_layout(1, 2);
  // Run both cores on the same workload at the same level: the big core
  // must retire more instructions and draw more power.
  os::ManyCoreSystem sys(
      chip,
      std::make_unique<ow::GeneratedWorkload>(
          2, ow::benchmark_by_name("compute.dense"), 1),
      os::SimConfig{}, layout.params);
  const auto obs = step(sys, std::vector<std::size_t>(2, 5));
  EXPECT_GT(obs.cores[0].ips, obs.cores[1].ips * 1.5);
  EXPECT_GT(obs.cores[0].power_w, obs.cores[1].power_w * 1.5);
}

TEST(Hetero, PerCoreParamsSizeChecked) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  EXPECT_THROW(os::ManyCoreSystem(
                   chip,
                   std::make_unique<ow::GeneratedWorkload>(
                       ow::GeneratedWorkload::mixed_suite(4, 1)),
                   os::SimConfig{}, oa::clustered_layout(1, 2).params),
               std::invalid_argument);
}

TEST(Hetero, OdrlMigratesBudgetTowardBigCores) {
  // Big and little cores all run the same compute-bound tenant; the
  // reallocator should discover that big cores convert watts better and
  // give them a larger share.
  const std::size_t cores = 8;
  const auto layout = oa::clustered_layout(4, cores);
  oa::ChipConfig nominal = oa::ChipConfig::make(cores, 0.6);
  const double peak = oa::hetero_max_chip_power_w(nominal, layout.params);
  const oa::ChipConfig chip = nominal.with_tdp(0.5 * peak);

  os::ManyCoreSystem sys(
      chip,
      std::make_unique<ow::GeneratedWorkload>(
          cores, ow::benchmark_by_name("compute.dense"), 3),
      os::SimConfig{}, layout.params);
  oc::OdrlController ctl(chip);
  auto levels = ctl.initial_levels(cores);
  for (int e = 0; e < 4000; ++e) levels = decide(ctl, step(sys, levels));

  double big_budget = 0.0;
  double little_budget = 0.0;
  for (std::size_t i = 0; i < cores; ++i) {
    (layout.labels[i] == "big" ? big_budget : little_budget) +=
        ctl.core_budgets()[i];
  }
  EXPECT_GT(big_budget, 1.5 * little_budget);
}
