// Tests for the OD-RL controller: API contracts, learning behaviour on
// controlled single-core scenarios, budget-event handling, and both action
// modes. Longer multi-controller shape checks live in integration_test.cpp.
#include <gtest/gtest.h>

#include <memory>

#include "arch/chip_config.hpp"
#include "core/odrl_controller.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

#include "loop_helpers.hpp"

namespace oc = odrl::core;
namespace os = odrl::sim;
namespace oa = odrl::arch;
namespace ow = odrl::workload;
using odrl::test::decide;
using odrl::test::step;

namespace {

os::ManyCoreSystem single_core_system(const char* bench, double frac) {
  const oa::ChipConfig chip = oa::ChipConfig::make(1, frac);
  return os::ManyCoreSystem(
      chip, std::make_unique<ow::GeneratedWorkload>(
                1, ow::benchmark_by_name(bench), 1));
}

/// Runs a controller loop and returns mean chip power over the last
/// `tail` epochs.
double tail_mean_power(os::ManyCoreSystem& sys, os::Controller& ctl,
                       std::size_t epochs, std::size_t tail) {
  auto levels = ctl.initial_levels(sys.n_cores());
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t e = 0; e < epochs; ++e) {
    const auto obs = step(sys, levels);
    levels = decide(ctl, obs);
    if (e + tail >= epochs) {
      sum += obs.true_chip_power_w;
      ++counted;
    }
  }
  return sum / static_cast<double>(counted);
}

}  // namespace

TEST(OdrlController, ApiContracts) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  oc::OdrlController ctl(chip);
  EXPECT_EQ(ctl.name(), "OD-RL");
  const auto init = ctl.initial_levels(8);
  EXPECT_EQ(init.size(), 8u);
  for (auto l : init) EXPECT_LT(l, chip.vf_table().size());
  EXPECT_THROW(ctl.initial_levels(4), std::invalid_argument);
  EXPECT_EQ(ctl.core_budgets().size(), 8u);
  EXPECT_THROW(ctl.agent(8), std::out_of_range);
  EXPECT_THROW(ctl.last_state(8), std::out_of_range);
  EXPECT_THROW(ctl.on_budget_change(0.0), std::invalid_argument);
}

TEST(OdrlController, DecideReturnsValidLevels) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   ow::GeneratedWorkload::mixed_suite(4, 2)));
  oc::OdrlController ctl(chip);
  auto levels = ctl.initial_levels(4);
  for (int e = 0; e < 200; ++e) {
    const auto obs = step(sys, levels);
    levels = decide(ctl, obs);
    ASSERT_EQ(levels.size(), 4u);
    for (auto l : levels) EXPECT_LT(l, chip.vf_table().size());
  }
}

TEST(OdrlController, RelativeActionsMoveAtMostOneLevel) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   ow::GeneratedWorkload::mixed_suite(4, 2)));
  oc::OdrlConfig cfg;
  cfg.action_mode = oc::ActionMode::kRelative;
  oc::OdrlController ctl(chip, cfg);
  auto levels = ctl.initial_levels(4);
  for (int e = 0; e < 300; ++e) {
    const auto obs = step(sys, levels);
    const auto next = decide(ctl, obs);
    for (std::size_t i = 0; i < 4; ++i) {
      const auto diff = next[i] > levels[i] ? next[i] - levels[i]
                                            : levels[i] - next[i];
      EXPECT_LE(diff, 1u) << "core " << i << " epoch " << e;
    }
    levels = next;
  }
}

TEST(OdrlController, ComputeBoundCoreConvergesNearBudget) {
  auto sys = single_core_system("compute.dense", 0.6);
  oc::OdrlController ctl(sys.config());
  const double power = tail_mean_power(sys, ctl, 6000, 1000);
  // The single agent should fill most of the (single-core) TDP without
  // sitting above it.
  EXPECT_GT(power, 0.55 * sys.config().tdp_w());
  EXPECT_LT(power, 1.1 * sys.config().tdp_w());
}

TEST(OdrlController, MemoryBoundCoreDrawsLessThanComputeBound) {
  auto mem_sys = single_core_system("memory.pointer", 0.9);
  auto cpu_sys = single_core_system("compute.dense", 0.9);
  oc::OdrlController mem_ctl(mem_sys.config());
  oc::OdrlController cpu_ctl(cpu_sys.config());
  const double mem_power = tail_mean_power(mem_sys, mem_ctl, 4000, 500);
  const double cpu_power = tail_mean_power(cpu_sys, cpu_ctl, 4000, 500);
  EXPECT_LT(mem_power, cpu_power);
}

TEST(OdrlController, BudgetsAlwaysSumToVirtualBudget) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   ow::GeneratedWorkload::mixed_suite(8, 4)));
  oc::OdrlController ctl(chip);
  auto levels = ctl.initial_levels(8);
  for (int e = 0; e < 500; ++e) {
    const auto obs = step(sys, levels);
    levels = decide(ctl, obs);
    double sum = 0.0;
    for (double b : ctl.core_budgets()) {
      EXPECT_GT(b, 0.0);
      sum += b;
    }
    // Budgets track mu * TDP, but only exactly right after a reallocation
    // (blending in between); bound loosely by the mu clamp range.
    EXPECT_GT(sum, 0.5 * chip.tdp_w());
    EXPECT_LT(sum, 2.5 * chip.tdp_w());
  }
  EXPECT_GT(ctl.realloc_count(), 0u);
}

TEST(OdrlController, BudgetDropRescalesAllocationsImmediately) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  oc::OdrlController ctl(chip);
  const std::vector<double> before(ctl.core_budgets().begin(),
                                   ctl.core_budgets().end());
  ctl.on_budget_change(chip.tdp_w() * 0.5);
  const auto after = ctl.core_budgets();
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_NEAR(after[i], before[i] * 0.5, 1e-9);
  }
}

TEST(OdrlController, BudgetJitterDoesNotRetriggerRescale) {
  // Regression: decide() used exact float equality to detect budget moves,
  // so rounding noise in the observed budget re-triggered a (slightly
  // lossy) rescale of every per-core allocation each epoch.
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   ow::GeneratedWorkload::mixed_suite(4, 2)));
  oc::OdrlController ctl(chip);
  const double half = chip.tdp_w() * 0.5;
  ctl.on_budget_change(half);
  const std::vector<double> before(ctl.core_budgets().begin(),
                                   ctl.core_budgets().end());

  auto levels = ctl.initial_levels(4);
  auto obs = step(sys, levels);
  // Sub-tolerance jitter (e.g. the budget recomputed elsewhere in a
  // different order): must NOT be treated as a budget move.
  obs.budget_w = half * (1.0 + 1e-12);
  decide(ctl, obs);
  const auto after = ctl.core_budgets();
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i], before[i]) << "core " << i;  // bitwise untouched
  }

  // A real move must still rescale immediately.
  obs = step(sys, levels);
  obs.budget_w = chip.tdp_w() * 0.25;
  decide(ctl, obs);
  const auto rescaled = ctl.core_budgets();
  for (std::size_t i = 0; i < rescaled.size(); ++i) {
    EXPECT_NEAR(rescaled[i], before[i] * 0.5, 1e-9);
  }
}

TEST(OdrlController, AdaptsToBudgetDropInClosedLoop) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.7);
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   ow::GeneratedWorkload::mixed_suite(8, 6)));
  oc::OdrlController ctl(chip);
  os::RunConfig cfg;
  cfg.epochs = 6000;
  cfg.warmup_epochs = 2000;
  cfg.budget_events = {{3000, chip.tdp_w() * 0.5}};
  const auto r = os::run_closed_loop(sys, ctl, cfg);
  // Mean power over the last quarter (well after the drop) must be under
  // the reduced budget plus a small tolerance.
  double tail = 0.0;
  for (std::size_t e = 5000; e < 6000; ++e) {
    tail += r.trace[e].true_chip_power_w;
  }
  tail /= 1000.0;
  EXPECT_LT(tail, chip.tdp_w() * 0.5 * 1.05);
}

TEST(OdrlController, ResetClearsLearnedState) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   ow::GeneratedWorkload::mixed_suite(4, 2)));
  oc::OdrlController ctl(chip);
  auto levels = ctl.initial_levels(4);
  for (int e = 0; e < 300; ++e) levels = decide(ctl, step(sys, levels));
  EXPECT_GT(ctl.agent(0).updates(), 0u);
  ctl.reset();
  EXPECT_EQ(ctl.agent(0).updates(), 0u);
  EXPECT_EQ(ctl.realloc_count(), 0u);
  EXPECT_DOUBLE_EQ(ctl.overcommit_mu(), 1.0);
  const auto budgets = ctl.core_budgets();
  for (double b : budgets) {
    EXPECT_NEAR(b, chip.tdp_w() / 4.0, 1e-9);
  }
}

TEST(OdrlController, AbsoluteActionModeWorks) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   ow::GeneratedWorkload::mixed_suite(4, 2)));
  oc::OdrlConfig cfg;
  cfg.action_mode = oc::ActionMode::kAbsolute;
  oc::OdrlController ctl(chip, cfg);
  auto levels = ctl.initial_levels(4);
  for (int e = 0; e < 300; ++e) {
    const auto obs = step(sys, levels);
    levels = decide(ctl, obs);
    for (auto l : levels) EXPECT_LT(l, chip.vf_table().size());
  }
  // Absolute mode keeps the level in the state: bigger table.
  EXPECT_EQ(ctl.agent(0).table().n_actions(), chip.vf_table().size());
}

TEST(OdrlController, GlobalReallocOffKeepsFairShares) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   ow::GeneratedWorkload::mixed_suite(4, 2)));
  oc::OdrlConfig cfg;
  cfg.global_realloc = false;
  oc::OdrlController ctl(chip, cfg);
  auto levels = ctl.initial_levels(4);
  for (int e = 0; e < 300; ++e) levels = decide(ctl, step(sys, levels));
  EXPECT_EQ(ctl.realloc_count(), 0u);
  for (double b : ctl.core_budgets()) {
    EXPECT_NEAR(b, chip.tdp_w() / 4.0, 1e-9);
  }
}

TEST(OdrlController, DeterministicForSameSeed) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  auto run = [&](std::uint64_t seed) {
    os::ManyCoreSystem sys(chip,
                           std::make_unique<ow::GeneratedWorkload>(
                               ow::GeneratedWorkload::mixed_suite(4, 2)));
    oc::OdrlConfig cfg;
    cfg.seed = seed;
    oc::OdrlController ctl(chip, cfg);
    auto levels = ctl.initial_levels(4);
    std::vector<std::size_t> history;
    for (int e = 0; e < 200; ++e) {
      levels = decide(ctl, step(sys, levels));
      history.insert(history.end(), levels.begin(), levels.end());
    }
    return history;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(OdrlController, ThermalAwareRewardLowersHotCorePower) {
  // A chip with a tight junction limit and a generous power budget: without
  // the thermal term the agent runs the compute core hot; with it the agent
  // backs off even though watts are available.
  oa::ThermalParams thermal;
  thermal.r_vertical_c_per_w = 4.0;  // poor heatsink: hot at high power
  const oa::VfTable table = oa::VfTable::default_table();
  const oa::ChipConfig chip(1, table, /*tdp_w=*/12.0, {}, thermal);

  auto run_power = [&](double weight) {
    os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                     1, ow::benchmark_by_name("compute.dense"),
                                     1));
    oc::OdrlConfig cfg;
    cfg.thermal_weight = weight;
    cfg.thermal_safe_c = 60.0;
    oc::OdrlController ctl(chip, cfg);
    return tail_mean_power(sys, ctl, 5000, 1000);
  };

  const double without = run_power(0.0);
  const double with = run_power(3.0);
  EXPECT_LT(with, without * 0.9);
}

TEST(OdrlConfig, Validation) {
  const oa::ChipConfig chip = oa::ChipConfig::make(2, 0.6);
  oc::OdrlConfig cfg;
  cfg.headroom_bins = 1;
  EXPECT_THROW(oc::OdrlController(chip, cfg), std::invalid_argument);
  cfg = {};
  cfg.lambda = -1.0;
  EXPECT_THROW(oc::OdrlController(chip, cfg), std::invalid_argument);
  cfg = {};
  cfg.kappa = -0.1;
  EXPECT_THROW(oc::OdrlController(chip, cfg), std::invalid_argument);
  cfg = {};
  cfg.realloc_period = 0;
  EXPECT_THROW(oc::OdrlController(chip, cfg), std::invalid_argument);
  cfg = {};
  cfg.target_fill = 1.5;
  EXPECT_THROW(oc::OdrlController(chip, cfg), std::invalid_argument);
  cfg = {};
  cfg.budget_blend = 0.0;
  EXPECT_THROW(oc::OdrlController(chip, cfg), std::invalid_argument);
  cfg = {};
  cfg.target_utilization = 0.0;
  EXPECT_THROW(oc::OdrlController(chip, cfg), std::invalid_argument);
  cfg = {};
  EXPECT_NO_THROW(oc::OdrlController(chip, cfg));
}
