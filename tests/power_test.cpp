// Unit and property tests for the power model and energy accounting.
#include <gtest/gtest.h>

#include "arch/vf_table.hpp"
#include "power/energy.hpp"
#include "power/power_model.hpp"

namespace opw = odrl::power;
namespace oa = odrl::arch;
namespace ow = odrl::workload;

namespace {
ow::PhaseSample phase_with_activity(double activity) {
  return {.base_cpi = 1.0, .mpki = 5.0, .activity = activity};
}
}  // namespace

TEST(PowerModel, BreakdownSumsToTotal) {
  const opw::PowerModel m(oa::CoreParams{});
  const auto b = m.core_power({1.0, 2.0}, phase_with_activity(0.8), 85.0);
  EXPECT_NEAR(b.total_w(), b.dynamic_w + b.leakage_w + b.uncore_w, 1e-12);
  EXPECT_GT(b.dynamic_w, 0.0);
  EXPECT_GT(b.leakage_w, 0.0);
  EXPECT_GT(b.uncore_w, 0.0);
}

TEST(PowerModel, DynamicScalesWithActivity) {
  const opw::PowerModel m(oa::CoreParams{});
  const auto lo = m.core_power_at({1.0, 2.0}, 0.4, 85.0);
  const auto hi = m.core_power_at({1.0, 2.0}, 0.8, 85.0);
  EXPECT_NEAR(hi.dynamic_w, 2.0 * lo.dynamic_w, 1e-12);
  EXPECT_DOUBLE_EQ(hi.leakage_w, lo.leakage_w);  // activity-independent
}

TEST(PowerModel, IdleIsLeakagePlusUncore) {
  const opw::PowerModel m(oa::CoreParams{});
  const oa::VfPoint vf{0.9, 1.5};
  const auto b = m.core_power_at(vf, 0.0, 70.0);
  EXPECT_DOUBLE_EQ(b.dynamic_w, 0.0);
  EXPECT_DOUBLE_EQ(m.idle_power_w(vf, 70.0), b.leakage_w + b.uncore_w);
}

TEST(PowerModel, MaxPowerBoundsObservedPower) {
  const opw::PowerModel m(oa::CoreParams{});
  const oa::VfPoint vf{1.1, 3.0};
  const double max_w = m.max_core_power_w(vf, 85.0);
  for (double act : {0.1, 0.5, 0.9, 1.0}) {
    EXPECT_LE(m.core_power_at(vf, act, 85.0).total_w(), max_w + 1e-12);
  }
}

TEST(PowerModel, ActivityOutOfRangeThrows) {
  const opw::PowerModel m(oa::CoreParams{});
  EXPECT_THROW(m.core_power_at({1.0, 2.0}, -0.1, 85.0),
               std::invalid_argument);
  EXPECT_THROW(m.core_power_at({1.0, 2.0}, 1.1, 85.0), std::invalid_argument);
}

TEST(PowerModel, LeakageTemperatureMonotone) {
  const opw::PowerModel m(oa::CoreParams{});
  double prev = 0.0;
  for (double t : {45.0, 65.0, 85.0, 105.0}) {
    const double leak = m.core_power_at({1.0, 2.0}, 0.5, t).leakage_w;
    EXPECT_GT(leak, prev);
    prev = leak;
  }
}

// Power strictly increases along the V/F table at fixed activity -- the
// invariant every level-based budget argument relies on.
class PowerAlongTable : public ::testing::TestWithParam<double> {};

TEST_P(PowerAlongTable, StrictlyIncreasing) {
  const double activity = GetParam();
  const opw::PowerModel m(oa::CoreParams{});
  const oa::VfTable table = oa::VfTable::default_table();
  double prev = 0.0;
  for (std::size_t l = 0; l < table.size(); ++l) {
    const double p = m.core_power_at(table[l], activity, 85.0).total_w();
    EXPECT_GT(p, prev) << "level " << l;
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Activities, PowerAlongTable,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

// ---------------------------------------------------- EnergyAccountant

TEST(EnergyAccountant, AccumulatesEnergy) {
  opw::EnergyAccountant acc(100.0);
  acc.add_epoch(50.0, 1e-3);
  acc.add_epoch(80.0, 1e-3);
  EXPECT_NEAR(acc.total_energy_j(), 0.13, 1e-12);
  EXPECT_DOUBLE_EQ(acc.otb_energy_j(), 0.0);
  EXPECT_EQ(acc.epochs(), 2u);
  EXPECT_NEAR(acc.mean_power_w(), 65.0, 1e-9);
}

TEST(EnergyAccountant, TracksOvershoot) {
  opw::EnergyAccountant acc(100.0);
  acc.add_epoch(120.0, 1e-3);  // 20 W over
  acc.add_epoch(90.0, 1e-3);   // under
  acc.add_epoch(110.0, 1e-3);  // 10 W over
  EXPECT_NEAR(acc.otb_energy_j(), 0.030, 1e-12);
  EXPECT_NEAR(acc.time_over_budget_s(), 2e-3, 1e-15);
  EXPECT_DOUBLE_EQ(acc.peak_overshoot_w(), 20.0);
  EXPECT_NEAR(acc.overshoot_time_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(EnergyAccountant, ExactlyAtBudgetIsNotOver) {
  opw::EnergyAccountant acc(100.0);
  acc.add_epoch(100.0, 1e-3);
  EXPECT_DOUBLE_EQ(acc.otb_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(acc.time_over_budget_s(), 0.0);
}

TEST(EnergyAccountant, BudgetChangeAppliesForward) {
  opw::EnergyAccountant acc(100.0);
  acc.add_epoch(110.0, 1e-3);  // 10 over old budget
  acc.set_budget_w(120.0);
  acc.add_epoch(110.0, 1e-3);  // under new budget
  EXPECT_NEAR(acc.otb_energy_j(), 0.010, 1e-12);
}

TEST(EnergyAccountant, ResetClears) {
  opw::EnergyAccountant acc(100.0);
  acc.add_epoch(150.0, 1e-3);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.total_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(acc.otb_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(acc.peak_overshoot_w(), 0.0);
  EXPECT_EQ(acc.epochs(), 0u);
}

TEST(EnergyAccountant, RejectsBadInputs) {
  EXPECT_THROW(opw::EnergyAccountant(0.0), std::invalid_argument);
  opw::EnergyAccountant acc(10.0);
  EXPECT_THROW(acc.add_epoch(-1.0, 1e-3), std::invalid_argument);
  EXPECT_THROW(acc.add_epoch(5.0, 0.0), std::invalid_argument);
  EXPECT_THROW(acc.set_budget_w(0.0), std::invalid_argument);
}
