// Unit and property tests for the power model and energy accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "arch/chip_config.hpp"
#include "arch/vf_table.hpp"
#include "core/odrl_controller.hpp"
#include "power/energy.hpp"
#include "power/power_model.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "util/check.hpp"
#include "workload/workload.hpp"

namespace opw = odrl::power;
namespace oa = odrl::arch;
namespace ow = odrl::workload;

namespace {
ow::PhaseSample phase_with_activity(double activity) {
  return {.base_cpi = 1.0, .mpki = 5.0, .activity = activity};
}
}  // namespace

TEST(PowerModel, BreakdownSumsToTotal) {
  const opw::PowerModel m(oa::CoreParams{});
  const auto b = m.core_power({1.0, 2.0}, phase_with_activity(0.8), 85.0);
  EXPECT_NEAR(b.total_w(), b.dynamic_w + b.leakage_w + b.uncore_w, 1e-12);
  EXPECT_GT(b.dynamic_w, 0.0);
  EXPECT_GT(b.leakage_w, 0.0);
  EXPECT_GT(b.uncore_w, 0.0);
}

TEST(PowerModel, DynamicScalesWithActivity) {
  const opw::PowerModel m(oa::CoreParams{});
  const auto lo = m.core_power_at({1.0, 2.0}, 0.4, 85.0);
  const auto hi = m.core_power_at({1.0, 2.0}, 0.8, 85.0);
  EXPECT_NEAR(hi.dynamic_w, 2.0 * lo.dynamic_w, 1e-12);
  EXPECT_DOUBLE_EQ(hi.leakage_w, lo.leakage_w);  // activity-independent
}

TEST(PowerModel, IdleIsLeakagePlusUncore) {
  const opw::PowerModel m(oa::CoreParams{});
  const oa::VfPoint vf{0.9, 1.5};
  const auto b = m.core_power_at(vf, 0.0, 70.0);
  EXPECT_DOUBLE_EQ(b.dynamic_w, 0.0);
  EXPECT_DOUBLE_EQ(m.idle_power_w(vf, 70.0), b.leakage_w + b.uncore_w);
}

TEST(PowerModel, MaxPowerBoundsObservedPower) {
  const opw::PowerModel m(oa::CoreParams{});
  const oa::VfPoint vf{1.1, 3.0};
  const double max_w = m.max_core_power_w(vf, 85.0);
  for (double act : {0.1, 0.5, 0.9, 1.0}) {
    EXPECT_LE(m.core_power_at(vf, act, 85.0).total_w(), max_w + 1e-12);
  }
}

TEST(PowerModel, ActivityOutOfRangeThrows) {
  // Far outside [0, 1] is a caller bug in every configuration: the ODRL
  // contract layer fires first in checked builds, the tolerance guard in
  // release builds. Both are loud.
  const opw::PowerModel m(oa::CoreParams{});
  if (odrl::util::checks_enabled()) {
    EXPECT_THROW(m.core_power_at({1.0, 2.0}, -0.1, 85.0),
                 odrl::util::ContractViolation);
    EXPECT_THROW(m.core_power_at({1.0, 2.0}, 1.1, 85.0),
                 odrl::util::ContractViolation);
  } else {
    EXPECT_THROW(m.core_power_at({1.0, 2.0}, -0.1, 85.0),
                 std::invalid_argument);
    EXPECT_THROW(m.core_power_at({1.0, 2.0}, 1.1, 85.0),
                 std::invalid_argument);
  }
}

TEST(PowerModel, ActivityWithinToleranceClampsExactly) {
  // Accumulated float error in upstream smoothing can push activity a few
  // ulps past the boundaries; within kActivityTol the model clamps to the
  // exact boundary value rather than throwing (regression: saturate-fault
  // runs used to abort in release builds on activity = 1 + O(1e-12)).
  const opw::PowerModel m(oa::CoreParams{});
  const double at_one = m.core_power_at({1.0, 2.0}, 1.0, 85.0).total_w();
  const double at_zero = m.core_power_at({1.0, 2.0}, 0.0, 85.0).total_w();
  if (!odrl::util::checks_enabled()) {
    EXPECT_EQ(m.core_power_at({1.0, 2.0}, 1.0 + 0.5e-6, 85.0).total_w(),
              at_one);
    EXPECT_EQ(m.core_power_at({1.0, 2.0}, -0.5e-6, 85.0).total_w(), at_zero);
    // The tolerance is tight: 1e-6 is a guard band, not a license.
    EXPECT_THROW(m.core_power_at({1.0, 2.0}, 1.0 + 2e-6, 85.0),
                 std::invalid_argument);
  } else {
    // Checked builds keep the strict contract; the clamp never engages.
    EXPECT_THROW(m.core_power_at({1.0, 2.0}, 1.0 + 0.5e-6, 85.0),
                 odrl::util::ContractViolation);
  }
  // Exactly-on-boundary values are always fine.
  EXPECT_GT(at_one, at_zero);
}

TEST(PowerModel, SaturateFaultRunCompletesWithoutActivityAbort) {
  // Regression driver for the clamp: sensor saturate faults scale readings
  // hard against the rails for many epochs while the OD-RL loop keeps
  // re-deciding; the run must complete with finite metrics instead of
  // aborting in the power model.
  const std::size_t cores = 16;
  namespace os = odrl::sim;
  const oa::ChipConfig chip = oa::ChipConfig::make(cores, 0.6);
  os::FaultSchedule faults;
  for (std::size_t c = 0; c < cores; c += 2) {
    faults.sensor_saturate(5 + c, c, 40, 10.0);
  }
  os::SimConfig sim;
  sim.sensor_noise_rel = 0.05;
  sim.seed = 99;
  os::ManyCoreSystem system(
      chip,
      std::make_unique<odrl::workload::GeneratedWorkload>(
          odrl::workload::GeneratedWorkload::mixed_suite(cores, 4)),
      sim);
  odrl::core::OdrlController controller(chip);
  os::RunConfig cfg;
  cfg.warmup_epochs = 5;
  cfg.epochs = 100;
  cfg.faults = &faults;
  cfg.watchdog.enabled = true;
  const os::RunResult r = os::run_closed_loop(system, controller, cfg);
  EXPECT_GT(r.fault_events_applied, 0u);
  EXPECT_TRUE(std::isfinite(r.total_energy_j));
  EXPECT_TRUE(std::isfinite(r.mean_power_w));
  EXPECT_GT(r.total_instructions, 0.0);
}

TEST(PowerModel, LeakageTemperatureMonotone) {
  const opw::PowerModel m(oa::CoreParams{});
  double prev = 0.0;
  for (double t : {45.0, 65.0, 85.0, 105.0}) {
    const double leak = m.core_power_at({1.0, 2.0}, 0.5, t).leakage_w;
    EXPECT_GT(leak, prev);
    prev = leak;
  }
}

// Power strictly increases along the V/F table at fixed activity -- the
// invariant every level-based budget argument relies on.
class PowerAlongTable : public ::testing::TestWithParam<double> {};

TEST_P(PowerAlongTable, StrictlyIncreasing) {
  const double activity = GetParam();
  const opw::PowerModel m(oa::CoreParams{});
  const oa::VfTable table = oa::VfTable::default_table();
  double prev = 0.0;
  for (std::size_t l = 0; l < table.size(); ++l) {
    const double p = m.core_power_at(table[l], activity, 85.0).total_w();
    EXPECT_GT(p, prev) << "level " << l;
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Activities, PowerAlongTable,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

// ---------------------------------------------------- EnergyAccountant

TEST(EnergyAccountant, AccumulatesEnergy) {
  opw::EnergyAccountant acc(100.0);
  acc.add_epoch(50.0, 1e-3);
  acc.add_epoch(80.0, 1e-3);
  EXPECT_NEAR(acc.total_energy_j(), 0.13, 1e-12);
  EXPECT_DOUBLE_EQ(acc.otb_energy_j(), 0.0);
  EXPECT_EQ(acc.epochs(), 2u);
  EXPECT_NEAR(acc.mean_power_w(), 65.0, 1e-9);
}

TEST(EnergyAccountant, TracksOvershoot) {
  opw::EnergyAccountant acc(100.0);
  acc.add_epoch(120.0, 1e-3);  // 20 W over
  acc.add_epoch(90.0, 1e-3);   // under
  acc.add_epoch(110.0, 1e-3);  // 10 W over
  EXPECT_NEAR(acc.otb_energy_j(), 0.030, 1e-12);
  EXPECT_NEAR(acc.time_over_budget_s(), 2e-3, 1e-15);
  EXPECT_DOUBLE_EQ(acc.peak_overshoot_w(), 20.0);
  EXPECT_NEAR(acc.overshoot_time_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(EnergyAccountant, ExactlyAtBudgetIsNotOver) {
  opw::EnergyAccountant acc(100.0);
  acc.add_epoch(100.0, 1e-3);
  EXPECT_DOUBLE_EQ(acc.otb_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(acc.time_over_budget_s(), 0.0);
}

TEST(EnergyAccountant, BudgetChangeAppliesForward) {
  opw::EnergyAccountant acc(100.0);
  acc.add_epoch(110.0, 1e-3);  // 10 over old budget
  acc.set_budget_w(120.0);
  acc.add_epoch(110.0, 1e-3);  // under new budget
  EXPECT_NEAR(acc.otb_energy_j(), 0.010, 1e-12);
}

TEST(EnergyAccountant, ResetClears) {
  opw::EnergyAccountant acc(100.0);
  acc.add_epoch(150.0, 1e-3);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.total_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(acc.otb_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(acc.peak_overshoot_w(), 0.0);
  EXPECT_EQ(acc.epochs(), 0u);
}

TEST(EnergyAccountant, RejectsBadInputs) {
  EXPECT_THROW(opw::EnergyAccountant(0.0), std::invalid_argument);
  opw::EnergyAccountant acc(10.0);
  EXPECT_THROW(acc.add_epoch(-1.0, 1e-3), std::invalid_argument);
  EXPECT_THROW(acc.add_epoch(5.0, 0.0), std::invalid_argument);
  EXPECT_THROW(acc.set_budget_w(0.0), std::invalid_argument);
}
