// Unit and property tests for the RC thermal network.
#include <gtest/gtest.h>

#include <vector>

#include "arch/mesh.hpp"
#include "thermal/thermal_model.hpp"

namespace ot = odrl::thermal;
namespace oa = odrl::arch;

namespace {
ot::ThermalModel make_model(std::size_t w = 2, std::size_t h = 2) {
  return ot::ThermalModel(oa::Mesh(w, h), oa::ThermalParams{});
}
}  // namespace

TEST(Thermal, StartsAtAmbient) {
  auto m = make_model();
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.temperature(i), oa::ThermalParams{}.ambient_c);
  }
}

TEST(Thermal, ZeroPowerStaysAtAmbient) {
  auto m = make_model();
  const std::vector<double> zeros(m.size(), 0.0);
  for (int i = 0; i < 100; ++i) m.step(zeros, 1e-3);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(m.temperature(i), oa::ThermalParams{}.ambient_c, 1e-9);
  }
}

TEST(Thermal, UniformPowerSteadyState) {
  // Uniform power: no lateral flow; T = T_amb + P * R_v exactly.
  auto m = make_model();
  const std::vector<double> power(m.size(), 5.0);
  const auto ss = m.steady_state(power);
  const oa::ThermalParams p;
  for (double t : ss) {
    EXPECT_NEAR(t, p.ambient_c + 5.0 * p.r_vertical_c_per_w, 1e-6);
  }
}

TEST(Thermal, TransientConvergesToSteadyState) {
  auto m = make_model(3, 3);
  std::vector<double> power(m.size(), 0.0);
  power[4] = 8.0;  // hot center tile
  const auto ss = m.steady_state(power);
  for (int i = 0; i < 20000; ++i) m.step(power, 1e-3);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(m.temperature(i), ss[i], 0.05) << "tile " << i;
  }
}

TEST(Thermal, HotTileHeatsNeighbors) {
  auto m = make_model(3, 3);
  std::vector<double> power(m.size(), 0.0);
  power[4] = 10.0;
  const auto ss = m.steady_state(power);
  const oa::ThermalParams p;
  // Center hottest; direct neighbors warmer than corners; all above ambient.
  EXPECT_GT(ss[4], ss[1]);
  EXPECT_GT(ss[1], ss[0]);
  EXPECT_GT(ss[0], p.ambient_c);
}

TEST(Thermal, SymmetryOfSymmetricLoad) {
  auto m = make_model(3, 3);
  std::vector<double> power(m.size(), 0.0);
  power[4] = 10.0;
  const auto ss = m.steady_state(power);
  // 4-fold symmetry around the center.
  EXPECT_NEAR(ss[0], ss[2], 1e-9);
  EXPECT_NEAR(ss[0], ss[6], 1e-9);
  EXPECT_NEAR(ss[0], ss[8], 1e-9);
  EXPECT_NEAR(ss[1], ss[3], 1e-9);
  EXPECT_NEAR(ss[1], ss[5], 1e-9);
  EXPECT_NEAR(ss[1], ss[7], 1e-9);
}

TEST(Thermal, StableForLongTimesteps) {
  // Substepping must keep forward Euler stable even for dt >> tau.
  auto m = make_model();
  const std::vector<double> power(m.size(), 6.0);
  m.step(power, 10.0);  // one enormous step
  const auto ss = m.steady_state(power);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(m.temperature(i), ss[i], 0.5);
    EXPECT_GT(m.temperature(i), 0.0);
    EXPECT_LT(m.temperature(i), 200.0);
  }
}

TEST(Thermal, ViolationCounting) {
  auto m = make_model();
  EXPECT_EQ(m.violation_count(), 0u);
  m.reset(110.0);  // above the 105C default limit
  EXPECT_EQ(m.violation_count(), m.size());
  m.reset(50.0);
  EXPECT_EQ(m.violation_count(), 0u);
}

TEST(Thermal, MaxTemperature) {
  auto m = make_model(2, 1);
  std::vector<double> power{10.0, 0.0};
  for (int i = 0; i < 5000; ++i) m.step(power, 1e-3);
  EXPECT_DOUBLE_EQ(m.max_temperature(),
                   std::max(m.temperature(0), m.temperature(1)));
  EXPECT_GT(m.temperature(0), m.temperature(1));
}

TEST(Thermal, ResetSetsAllTiles) {
  auto m = make_model();
  m.reset(77.0);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.temperature(i), 77.0);
  }
}

TEST(Thermal, InputValidation) {
  auto m = make_model();
  const std::vector<double> wrong_size(m.size() + 1, 0.0);
  EXPECT_THROW(m.step(wrong_size, 1e-3), std::invalid_argument);
  EXPECT_THROW(m.steady_state(wrong_size), std::invalid_argument);
  const std::vector<double> ok(m.size(), 0.0);
  EXPECT_THROW(m.step(ok, 0.0), std::invalid_argument);
  EXPECT_THROW(m.temperature(m.size()), std::out_of_range);
}

// Energy-balance property: in steady state, power in == heat flow out
// through the vertical resistances (lateral flows cancel internally).
class ThermalBalance : public ::testing::TestWithParam<double> {};

TEST_P(ThermalBalance, VerticalFlowMatchesPowerIn) {
  const double watts = GetParam();
  auto m = make_model(4, 4);
  std::vector<double> power(m.size(), 0.0);
  power[0] = watts;
  power[5] = watts * 0.5;
  const auto ss = m.steady_state(power);
  const oa::ThermalParams p;
  double flow_out = 0.0;
  for (double t : ss) flow_out += (t - p.ambient_c) / p.r_vertical_c_per_w;
  EXPECT_NEAR(flow_out, watts * 1.5, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Watts, ThermalBalance,
                         ::testing::Values(1.0, 4.0, 8.0, 12.0));
