// Tests for the ODRL_CHECK contract layer (util/check.hpp +
// sim/validate.cpp).
//
// Two tiers:
//   * Direct validator tests always run -- the validators are compiled
//     unconditionally, so every seeded violation (NaN power, level outside
//     the V/F table, budget sum off, mismatched/aliasing out-span) must
//     throw ContractViolation regardless of how the library was built.
//   * Integration tests branch on util::checks_enabled(): with the library
//     compiled ODRL_CHECKED=ON a faulty controller/workload is caught at
//     the contract boundary with an attributable diagnostic; with checks
//     compiled out the closed loop is unperturbed and bit-identical.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "arch/chip_config.hpp"
#include "core/odrl_controller.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "sim/validate.hpp"
#include "util/check.hpp"
#include "workload/workload.hpp"

#include "loop_helpers.hpp"

namespace oa = odrl::arch;
namespace oc = odrl::core;
namespace os = odrl::sim;
namespace ou = odrl::util;
namespace ow = odrl::workload;
using odrl::test::step;

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

os::ManyCoreSystem make_system(std::size_t n_cores = 4,
                               std::uint64_t seed = 7) {
  const oa::ChipConfig chip = oa::ChipConfig::make(n_cores, 0.6);
  return os::ManyCoreSystem(
      chip, std::make_unique<ow::GeneratedWorkload>(
                ow::GeneratedWorkload::mixed_suite(n_cores, seed)));
}

/// One real observation from a real step: the fixture every seeded
/// violation mutates. Starting from a valid EpochResult proves the
/// validator passes genuine data and that exactly the seeded fault trips.
os::EpochResult real_observation(os::ManyCoreSystem& sys) {
  const std::vector<std::size_t> levels(sys.config().n_cores(), 0);
  return step(sys, levels);
}

/// Controller that emits an out-of-range V/F level for core 0: the classic
/// faulty-policy bug the post-decide contract exists to attribute.
class OutOfRangeController final : public os::Controller {
 public:
  explicit OutOfRangeController(std::size_t n_levels)
      : n_levels_(n_levels) {}
  std::string name() const override { return "faulty-out-of-range"; }
  std::vector<std::size_t> initial_levels(std::size_t n_cores) override {
    return std::vector<std::size_t>(n_cores, 0);
  }
  void decide_into(const os::EpochResult& obs,
                   std::span<std::size_t> out) override {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = 0;
    if (!out.empty()) out[0] = n_levels_;  // one past the V/F table
    (void)obs;
  }

 private:
  std::size_t n_levels_;
};

/// Wraps a real workload and poisons core 0's activity with NaN from a
/// given epoch on -- the broken-sensor/broken-model input that turns every
/// downstream power figure into NaN.
class NanWorkload final : public ow::Workload {
 public:
  NanWorkload(std::unique_ptr<ow::Workload> inner, std::size_t poison_epoch)
      : inner_(std::move(inner)), poison_epoch_(poison_epoch) {}
  std::size_t n_cores() const override { return inner_->n_cores(); }
  std::span<const ow::PhaseSample> step() override {
    const auto samples = inner_->step();
    scratch_.assign(samples.begin(), samples.end());
    if (epoch_++ >= poison_epoch_ && !scratch_.empty()) {
      scratch_[0].activity = kNan;
    }
    return scratch_;
  }
  std::string core_label(std::size_t core) const override {
    return inner_->core_label(core);
  }

 private:
  std::unique_ptr<ow::Workload> inner_;
  std::size_t poison_epoch_;
  std::size_t epoch_ = 0;
  std::vector<ow::PhaseSample> scratch_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Direct validator tests (always active).
// ---------------------------------------------------------------------------

TEST(Validate, AcceptsRealObservation) {
  os::ManyCoreSystem sys = make_system();
  const os::EpochResult obs = real_observation(sys);
  EXPECT_NO_THROW(os::validate_epoch(obs, sys.config().n_cores(),
                                     sys.config().vf_table().size()));
}

TEST(Validate, RejectsNaNCorePower) {
  os::ManyCoreSystem sys = make_system();
  os::EpochResult obs = real_observation(sys);
  obs.cores.power_w()[1] = kNan;
  EXPECT_THROW(os::validate_epoch(obs, sys.config().n_cores(),
                                  sys.config().vf_table().size()),
               ou::ContractViolation);
}

TEST(Validate, RejectsInfiniteTruePower) {
  os::ManyCoreSystem sys = make_system();
  os::EpochResult obs = real_observation(sys);
  obs.cores.true_power_w()[0] = kInf;
  EXPECT_THROW(os::validate_epoch(obs, sys.config().n_cores(),
                                  sys.config().vf_table().size()),
               ou::ContractViolation);
}

TEST(Validate, RejectsNegativeCorePower) {
  os::ManyCoreSystem sys = make_system();
  os::EpochResult obs = real_observation(sys);
  obs.cores.power_w()[2] = -1.0;
  EXPECT_THROW(os::validate_epoch(obs, sys.config().n_cores(),
                                  sys.config().vf_table().size()),
               ou::ContractViolation);
}

TEST(Validate, RejectsLevelOutsideVfTable) {
  os::ManyCoreSystem sys = make_system();
  os::EpochResult obs = real_observation(sys);
  const std::size_t n_levels = sys.config().vf_table().size();
  obs.cores.level()[3] = n_levels;
  EXPECT_THROW(
      os::validate_epoch(obs, sys.config().n_cores(), n_levels),
      ou::ContractViolation);
}

TEST(Validate, RejectsChipPowerSumMismatch) {
  os::ManyCoreSystem sys = make_system();
  os::EpochResult obs = real_observation(sys);
  // Way past kBudgetSumRelTol: the aggregate no longer matches its column.
  obs.chip_power_w += 1.0;
  EXPECT_THROW(os::validate_epoch(obs, sys.config().n_cores(),
                                  sys.config().vf_table().size()),
               ou::ContractViolation);
}

TEST(Validate, RejectsCoreCountMismatch) {
  os::ManyCoreSystem sys = make_system();
  const os::EpochResult obs = real_observation(sys);
  EXPECT_THROW(os::validate_epoch(obs, sys.config().n_cores() + 1,
                                  sys.config().vf_table().size()),
               ou::ContractViolation);
}

TEST(Validate, RejectsStallFractionOutsideUnitInterval) {
  os::ManyCoreSystem sys = make_system();
  os::EpochResult obs = real_observation(sys);
  obs.cores.mem_stall_frac()[0] = 1.5;
  EXPECT_THROW(os::validate_epoch(obs, sys.config().n_cores(),
                                  sys.config().vf_table().size()),
               ou::ContractViolation);
}

TEST(Validate, RejectsNonPositiveEpochLength) {
  os::ManyCoreSystem sys = make_system();
  os::EpochResult obs = real_observation(sys);
  obs.epoch_s = 0.0;
  EXPECT_THROW(os::validate_epoch(obs, sys.config().n_cores(),
                                  sys.config().vf_table().size()),
               ou::ContractViolation);
}

TEST(Validate, OutSpanRejectsSizeMismatch) {
  os::ManyCoreSystem sys = make_system();
  const os::EpochResult obs = real_observation(sys);
  std::vector<std::size_t> short_out(obs.n_cores() - 1, 0);
  EXPECT_THROW(os::validate_out_span(obs, short_out),
               ou::ContractViolation);
  std::vector<std::size_t> good_out(obs.n_cores(), 0);
  EXPECT_NO_THROW(os::validate_out_span(obs, good_out));
}

TEST(Validate, OutSpanRejectsAliasingTheObservation) {
  os::ManyCoreSystem sys = make_system();
  os::EpochResult obs = real_observation(sys);
  // A controller writing its decision through the observation's own level
  // column: correct size, catastrophic aliasing.
  EXPECT_THROW(os::validate_out_span(obs, obs.cores.level()),
               ou::ContractViolation);
}

TEST(Validate, LevelsDisjointRejectsAliasingTheOutputBlock) {
  os::ManyCoreSystem sys = make_system();
  os::EpochResult obs = real_observation(sys);
  // step_into(out.cores.level(), out): the step loop would clobber the
  // levels it is still reading.
  EXPECT_THROW(os::validate_levels_disjoint(obs.cores.level(), obs),
               ou::ContractViolation);
  const std::vector<std::size_t> separate(obs.n_cores(), 0);
  EXPECT_NO_THROW(os::validate_levels_disjoint(separate, obs));
}

TEST(Validate, LevelsRejectOutOfRange) {
  const std::vector<std::size_t> levels{0, 2, 5};
  EXPECT_NO_THROW(os::validate_levels(levels, 6));
  EXPECT_THROW(os::validate_levels(levels, 5), ou::ContractViolation);
}

TEST(Validate, BudgetPartitionConservesWatts) {
  const std::vector<double> budgets{10.0, 20.0, 30.0};
  EXPECT_NO_THROW(os::validate_budget_partition(budgets, 60.0));
  // Off by far more than the relative tolerance: watts were minted.
  EXPECT_THROW(os::validate_budget_partition(budgets, 61.0),
               ou::ContractViolation);
}

TEST(Validate, BudgetPartitionRejectsNonFiniteAndNonPositiveShares) {
  EXPECT_THROW(
      os::validate_budget_partition(std::vector<double>{10.0, kNan}, 10.0),
      ou::ContractViolation);
  EXPECT_THROW(
      os::validate_budget_partition(std::vector<double>{-5.0, 15.0}, 10.0),
      ou::ContractViolation);
  EXPECT_THROW(os::validate_budget_partition(std::vector<double>{}, 10.0),
               ou::ContractViolation);
}

TEST(Validate, BudgetPartitionHonorsRelativeTolerance) {
  // 1e-9 relative error: inside the default tolerance (reassociation
  // noise), outside a tightened one.
  const std::vector<double> budgets{50.0, 50.0 + 100.0 * 1e-9};
  EXPECT_NO_THROW(os::validate_budget_partition(budgets, 100.0));
  EXPECT_THROW(os::validate_budget_partition(budgets, 100.0, 1e-12),
               ou::ContractViolation);
}

TEST(Check, FailureCarriesExpressionAndLocation) {
  try {
    ou::check_fail("x > 0", "some_file.cpp", 42, "x must be positive");
    FAIL() << "check_fail returned";
  } catch (const ou::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x must be positive"), std::string::npos) << what;
    EXPECT_NE(what.find("x > 0"), std::string::npos) << what;
    EXPECT_NE(what.find("some_file.cpp:42"), std::string::npos) << what;
  }
}

TEST(Check, ContractViolationIsALogicError) {
  // Contract failures are programming errors, not bad input: catch sites
  // filtering on std::logic_error must see them.
  EXPECT_THROW(ou::check_fail("c", "f.cpp", 1, "m"), std::logic_error);
}

// ---------------------------------------------------------------------------
// Integration: library call sites, branching on how the library was built.
// ---------------------------------------------------------------------------

TEST(CheckedIntegration, FaultyControllerCaughtAtTheDecideBoundary) {
  os::ManyCoreSystem sys = make_system(4, 11);
  OutOfRangeController faulty(sys.config().vf_table().size());
  os::RunConfig cfg;
  cfg.epochs = 5;
  cfg.keep_traces = false;
  if (ou::checks_enabled()) {
    // The post-decide contract attributes the bug to the controller the
    // moment it emits the bad level.
    EXPECT_THROW(os::run_closed_loop(sys, faulty, cfg),
                 ou::ContractViolation);
  } else {
    // Unchecked, the bad level travels onward and only the simulator's own
    // argument check trips -- one epoch later, blamed on the wrong layer.
    EXPECT_THROW(os::run_closed_loop(sys, faulty, cfg),
                 std::invalid_argument);
  }
}

TEST(CheckedIntegration, NanWorkloadCaughtAtTheStepPostcondition) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  auto inner = std::make_unique<ow::GeneratedWorkload>(
      ow::GeneratedWorkload::mixed_suite(4, 13));
  os::ManyCoreSystem sys(
      chip, std::make_unique<NanWorkload>(std::move(inner), 2));
  const std::vector<std::size_t> levels(4, 0);
  os::EpochResult obs;
  sys.step_into(levels, obs);  // epoch 0: clean
  sys.step_into(levels, obs);  // epoch 1: clean
  if (ou::checks_enabled()) {
    // Epoch 2 produces NaN power; the step_into post-condition fires at
    // the source instead of letting NaN leak into the controller.
    EXPECT_THROW(sys.step_into(levels, obs), ou::ContractViolation);
  } else {
    sys.step_into(levels, obs);
    // Compiled out: the poison propagates silently -- exactly the failure
    // mode the checked builds exist to catch at the source.
    EXPECT_TRUE(std::isnan(obs.chip_power_w));
    // ...but the always-on validator still identifies it after the fact.
    EXPECT_THROW(os::validate_epoch(obs, 4, chip.vf_table().size()),
                 ou::ContractViolation);
  }
}

TEST(CheckedIntegration, ContractsDoNotPerturbTheClosedLoop) {
  // Two identical OD-RL runs must produce bit-identical RunResults in
  // every build mode: contracts observe, they never compute anything the
  // surrounding code reads. Paired with CI running this suite both
  // checked and unchecked, this pins "ODRL_CHECKED only adds checks".
  auto run_once = [] {
    os::ManyCoreSystem sys = make_system(8, 21);
    oc::OdrlController ctl(sys.config());
    os::RunConfig cfg;
    cfg.epochs = 60;
    cfg.keep_traces = true;
    return os::run_closed_loop(sys, ctl, cfg);
  };
  const os::RunResult a = run_once();
  const os::RunResult b = run_once();
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.otb_energy_j, b.otb_energy_j);
  EXPECT_EQ(a.mean_power_w, b.mean_power_w);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].chip_power_w, b.trace[i].chip_power_w);
    EXPECT_EQ(a.trace[i].total_ips, b.trace[i].total_ips);
  }
}

TEST(CheckedIntegration, CheckedLoopAcceptsAHealthyRun) {
  // A healthy end-to-end run (OD-RL, budget events, replay workload) must
  // sail through every contract: validators reject faults, not physics.
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  ow::GeneratedWorkload gen = ow::GeneratedWorkload::mixed_suite(8, 5);
  os::ManyCoreSystem sys(
      chip, std::make_unique<ow::ReplayWorkload>(gen.record(200)));
  oc::OdrlController ctl(chip);
  os::RunConfig cfg;
  cfg.epochs = 200;
  cfg.budget_events = {{0, chip.tdp_w()}, {100, chip.tdp_w() * 0.7}};
  const os::RunResult result = os::run_closed_loop(sys, ctl, cfg);
  EXPECT_EQ(result.epochs, 200u);
  EXPECT_GT(result.total_instructions, 0.0);
}
