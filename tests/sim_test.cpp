// Unit tests for the many-core system simulator and the closed-loop runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>

#include "arch/chip_config.hpp"
#include "sim/controller.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

#include "loop_helpers.hpp"

namespace os = odrl::sim;
namespace oa = odrl::arch;
namespace ow = odrl::workload;

using odrl::test::step;

namespace {

std::unique_ptr<ow::Workload> steady_workload(std::size_t cores,
                                              std::uint64_t seed = 1) {
  return std::make_unique<ow::GeneratedWorkload>(
      ow::GeneratedWorkload::mixed_suite(cores, seed));
}

os::ManyCoreSystem make_system(std::size_t cores = 4,
                               os::SimConfig sim = {}) {
  return os::ManyCoreSystem(oa::ChipConfig::make(cores, 0.6),
                            steady_workload(cores), sim);
}

/// Fixed-level controller for driving the runner in tests.
class FixedController final : public os::Controller {
 public:
  explicit FixedController(std::size_t level) : level_(level) {}
  std::string name() const override { return "Fixed"; }
  std::vector<std::size_t> initial_levels(std::size_t n) override {
    return std::vector<std::size_t>(n, level_);
  }
  void decide_into(const os::EpochResult& obs,
                   std::span<std::size_t> out) override {
    last_budget_w = obs.budget_w;
    observed_budgets.push_back(obs.budget_w);
    ++decides;
    std::fill(out.begin(), out.end(), level_);
  }
  void on_budget_change(double b) override { budget_changes.push_back(b); }

  double last_budget_w = 0.0;
  std::size_t decides = 0;
  std::vector<double> budget_changes;
  std::vector<double> observed_budgets;  ///< one per decide, warmup included

 private:
  std::size_t level_;
};

}  // namespace

// ------------------------------------------------------- ManyCoreSystem

TEST(ManyCoreSystem, StepProducesConsistentObservation) {
  auto sys = make_system(4);
  const std::vector<std::size_t> levels(4, 3);
  const auto obs = step(sys, levels);
  ASSERT_EQ(obs.cores.size(), 4u);
  double sum_power = 0.0;
  double sum_ips = 0.0;
  for (const auto& core : obs.cores) {
    EXPECT_EQ(core.level, 3u);
    EXPECT_GT(core.ips, 0.0);
    EXPECT_GT(core.power_w, 0.0);
    EXPECT_GE(core.mem_stall_frac, 0.0);
    EXPECT_LT(core.mem_stall_frac, 1.0);
    EXPECT_GT(core.temp_c, 0.0);
    sum_power += core.power_w;
    sum_ips += core.ips;
  }
  // No sensor noise: measured == true.
  EXPECT_NEAR(obs.chip_power_w, sum_power, 1e-9);
  EXPECT_NEAR(obs.chip_power_w, obs.true_chip_power_w, 1e-9);
  EXPECT_NEAR(obs.total_ips, sum_ips, 1e-6);
  EXPECT_EQ(obs.epoch, 0u);
  EXPECT_DOUBLE_EQ(obs.budget_w, sys.config().tdp_w());
}

TEST(ManyCoreSystem, EpochCounterAdvances) {
  auto sys = make_system(2);
  const std::vector<std::size_t> levels(2, 0);
  EXPECT_EQ(step(sys, levels).epoch, 0u);
  EXPECT_EQ(step(sys, levels).epoch, 1u);
  EXPECT_EQ(sys.epochs_run(), 2u);
}

TEST(ManyCoreSystem, HigherLevelsDrawMorePower) {
  auto lo = make_system(4);
  auto hi = make_system(4);
  const auto obs_lo = step(lo, std::vector<std::size_t>(4, 0));
  const auto obs_hi = step(hi, std::vector<std::size_t>(4, 7));
  EXPECT_GT(obs_hi.true_chip_power_w, obs_lo.true_chip_power_w);
  EXPECT_GT(obs_hi.total_ips, obs_lo.total_ips);
}

TEST(ManyCoreSystem, TemperatureRisesUnderLoad) {
  auto sys = make_system(4);
  const std::vector<std::size_t> levels(4, 7);
  double first_max = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto obs = step(sys, levels);
    if (i == 0) first_max = obs.max_temp_c;
  }
  EXPECT_GT(sys.thermal().max_temperature(), first_max);
}

TEST(ManyCoreSystem, SensorNoiseDistortsMeasurementsOnly) {
  os::SimConfig cfg;
  cfg.sensor_noise_rel = 0.1;
  cfg.seed = 3;
  auto sys = make_system(4, cfg);
  const std::vector<std::size_t> levels(4, 4);
  bool saw_difference = false;
  for (int i = 0; i < 20; ++i) {
    const auto obs = step(sys, levels);
    if (std::abs(obs.chip_power_w - obs.true_chip_power_w) > 1e-6) {
      saw_difference = true;
    }
  }
  EXPECT_TRUE(saw_difference);
}

TEST(ManyCoreSystem, NoiseSubstreamsIndependentOfCoreCount) {
  // Core i's sensor-noise stream is a pure function of (seed, i): adding
  // cores to the chip must not perturb the existing cores' noise draws.
  // The multiplicative noise factor power_w / true_power_w isolates the
  // stream from the (core-count-dependent) true values.
  os::SimConfig cfg;
  cfg.sensor_noise_rel = 0.1;
  cfg.seed = 9;
  auto small = make_system(4, cfg);
  auto large = make_system(8, cfg);
  const std::vector<std::size_t> small_levels(4, 4);
  const std::vector<std::size_t> large_levels(8, 4);
  for (int e = 0; e < 20; ++e) {
    const auto so = step(small, small_levels);
    const auto lo = step(large, large_levels);
    for (std::size_t i = 0; i < 4; ++i) {
      ASSERT_GT(so.cores[i].true_power_w, 0.0);
      const double small_factor =
          so.cores[i].power_w / so.cores[i].true_power_w;
      const double large_factor =
          lo.cores[i].power_w / lo.cores[i].true_power_w;
      // Identical draws; only value*(1+g)/value rounding separates them.
      EXPECT_NEAR(small_factor, large_factor, 1e-12)
          << "core " << i << " epoch " << e;
    }
  }
}

TEST(ManyCoreSystem, TruePowerPerCoreSumsToChipTruePower) {
  os::SimConfig cfg;
  cfg.sensor_noise_rel = 0.2;
  cfg.seed = 4;
  auto sys = make_system(4, cfg);
  const auto obs = step(sys, std::vector<std::size_t>(4, 5));
  double sum_true = 0.0;
  for (const auto& core : obs.cores) {
    EXPECT_NE(core.power_w, core.true_power_w);  // noise applied
    sum_true += core.true_power_w;
  }
  EXPECT_NEAR(sum_true, obs.true_chip_power_w, 1e-9);
}

TEST(ManyCoreSystem, DeterministicForSameSeed) {
  auto a = make_system(4);
  auto b = make_system(4);
  const std::vector<std::size_t> levels(4, 5);
  for (int i = 0; i < 100; ++i) {
    const auto oa_ = step(a, levels);
    const auto ob_ = step(b, levels);
    EXPECT_DOUBLE_EQ(oa_.true_chip_power_w, ob_.true_chip_power_w);
    EXPECT_DOUBLE_EQ(oa_.total_ips, ob_.total_ips);
  }
}

TEST(ManyCoreSystem, ValidatesInputs) {
  auto sys = make_system(4);
  EXPECT_THROW(step(sys, std::vector<std::size_t>(3, 0)),
               std::invalid_argument);
  EXPECT_THROW(step(sys, std::vector<std::size_t>(4, 8)),
               std::invalid_argument);
  EXPECT_THROW(sys.set_budget_w(0.0), std::invalid_argument);
  EXPECT_THROW(os::ManyCoreSystem(oa::ChipConfig::make(4, 0.6),
                                  steady_workload(5)),
               std::invalid_argument);
  EXPECT_THROW(os::ManyCoreSystem(oa::ChipConfig::make(4, 0.6), nullptr),
               std::invalid_argument);
}

TEST(SimConfig, Validation) {
  os::SimConfig cfg;
  cfg.epoch_s = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.sensor_noise_rel = 0.6;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  EXPECT_NO_THROW(cfg.validate());
}

// --------------------------------------------------------------- Runner

TEST(Runner, AccumulatesTotalsAndTraces) {
  auto sys = make_system(4);
  FixedController ctl(4);
  os::RunConfig cfg;
  cfg.epochs = 100;
  const auto result = os::run_closed_loop(sys, ctl, cfg);

  EXPECT_EQ(result.epochs, 100u);
  EXPECT_EQ(result.controller_name, "Fixed");
  EXPECT_GT(result.total_instructions, 0.0);
  EXPECT_GT(result.total_energy_j, 0.0);
  EXPECT_GT(result.mean_power_w, 0.0);
  EXPECT_EQ(result.decisions, 100u);
  EXPECT_EQ(result.trace.size(), 100u);
  EXPECT_EQ(result.chip_power_trace().size(), 100u);
  EXPECT_EQ(result.budget_trace().size(), 100u);
  EXPECT_EQ(result.ips_trace().size(), 100u);
  EXPECT_NEAR(result.elapsed_s(), 0.1, 1e-12);
  // Energy == integral of the power trace.
  double integral = 0.0;
  for (double p : result.chip_power_trace()) integral += p * result.epoch_s;
  EXPECT_NEAR(result.total_energy_j, integral, 1e-9);
}

TEST(Runner, DerivedMetricsConsistent) {
  auto sys = make_system(4);
  FixedController ctl(4);
  os::RunConfig cfg;
  cfg.epochs = 50;
  const auto r = os::run_closed_loop(sys, ctl, cfg);
  EXPECT_NEAR(r.bips(), r.total_instructions / r.elapsed_s() / 1e9, 1e-9);
  EXPECT_NEAR(r.bips_per_watt(), r.bips() / r.mean_power_w, 1e-12);
  EXPECT_NEAR(r.bips3_per_watt(),
              r.bips() * r.bips() * r.bips() / r.mean_power_w, 1e-9);
  EXPECT_GT(r.mean_decision_us(), 0.0);
}

TEST(Runner, KeepTracesOffSavesMemory) {
  auto sys = make_system(2);
  FixedController ctl(2);
  os::RunConfig cfg;
  cfg.epochs = 10;
  cfg.keep_traces = false;
  const auto r = os::run_closed_loop(sys, ctl, cfg);
  EXPECT_TRUE(r.trace.empty());
  EXPECT_TRUE(r.chip_power_trace().empty());
  EXPECT_GT(r.total_instructions, 0.0);
}

TEST(Runner, BudgetEventsAppliedAndNotified) {
  auto sys = make_system(4);
  const double tdp = sys.config().tdp_w();
  FixedController ctl(4);
  os::RunConfig cfg;
  cfg.epochs = 20;
  cfg.budget_events = {{5, tdp * 0.5}, {10, tdp * 0.8}};
  const auto r = os::run_closed_loop(sys, ctl, cfg);

  ASSERT_EQ(ctl.budget_changes.size(), 2u);
  EXPECT_DOUBLE_EQ(ctl.budget_changes[0], tdp * 0.5);
  EXPECT_DOUBLE_EQ(ctl.budget_changes[1], tdp * 0.8);
  EXPECT_DOUBLE_EQ(r.trace[0].budget_w, tdp);
  EXPECT_DOUBLE_EQ(r.trace[5].budget_w, tdp * 0.5);
  EXPECT_DOUBLE_EQ(r.trace[10].budget_w, tdp * 0.8);
  EXPECT_DOUBLE_EQ(r.trace[19].budget_w, tdp * 0.8);
}

TEST(Runner, EpochZeroBudgetEventAppliesBeforeWarmup) {
  // An event at epoch 0 is the budget in force when measurement starts;
  // warmup must run (and learn) under it, not under the default TDP.
  auto sys = make_system(4);
  const double tdp = sys.config().tdp_w();
  FixedController ctl(4);
  os::RunConfig cfg;
  cfg.epochs = 10;
  cfg.warmup_epochs = 5;
  cfg.budget_events = {{0, tdp * 0.5}};
  const auto r = os::run_closed_loop(sys, ctl, cfg);

  // Notified exactly once, before any epoch ran.
  ASSERT_EQ(ctl.budget_changes.size(), 1u);
  EXPECT_DOUBLE_EQ(ctl.budget_changes[0], tdp * 0.5);
  // The very first (warmup) observation already carries the event budget.
  ASSERT_EQ(ctl.observed_budgets.size(), 15u);
  EXPECT_DOUBLE_EQ(ctl.observed_budgets.front(), tdp * 0.5);
  // And the measured region starts at it too.
  EXPECT_DOUBLE_EQ(r.trace.front().budget_w, tdp * 0.5);
  EXPECT_DOUBLE_EQ(r.trace.back().budget_w, tdp * 0.5);
}

TEST(Runner, OvershootAccountingAgainstMovedBudget) {
  auto sys = make_system(4);
  FixedController ctl(4);  // draws well under the default 60% TDP
  os::RunConfig cfg;
  cfg.epochs = 40;
  // Drop the budget to a level the fixed controller must violate.
  cfg.budget_events = {{20, 1.0}};
  const auto r = os::run_closed_loop(sys, ctl, cfg);
  EXPECT_GT(r.otb_energy_j, 0.0);
  EXPECT_GT(r.time_over_s, 0.0);
  EXPECT_GT(r.peak_overshoot_w, 0.0);
  EXPECT_NEAR(r.overshoot_time_fraction(), 0.5, 0.05);
}

TEST(Runner, WarmupIsNotMeasured) {
  auto a = make_system(4, {});
  auto b = make_system(4, {});
  FixedController ca(4);
  FixedController cb(4);
  os::RunConfig with_warmup;
  with_warmup.epochs = 50;
  with_warmup.warmup_epochs = 50;
  os::RunConfig no_warmup;
  no_warmup.epochs = 50;
  const auto rw = os::run_closed_loop(a, ca, with_warmup);
  const auto rn = os::run_closed_loop(b, cb, no_warmup);
  EXPECT_EQ(rw.epochs, 50u);
  EXPECT_EQ(rw.decisions, 50u);         // warmup decides are not counted
  EXPECT_EQ(a.epochs_run(), 100u);      // but the system did run them
  EXPECT_EQ(b.epochs_run(), 50u);
  (void)rn;
}

TEST(Runner, ValidatesConfig) {
  os::RunConfig cfg;
  cfg.epochs = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.budget_events = {{5, 10.0}, {3, 10.0}};  // unsorted
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.budget_events = {{5, 0.0}};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ------------------------------------------------- DVFS actuation cost

TEST(SwitchCost, LevelChangeStallsAndDissipates) {
  os::SimConfig cfg;
  cfg.switch_penalty_s = 2e-4;  // 20% of a 1 ms epoch
  cfg.switch_energy_j = 1e-3;
  auto costed = make_system(2, cfg);
  auto ideal = make_system(2, os::SimConfig{});

  // Epoch 0 establishes the previous levels.
  const std::vector<std::size_t> lo(2, 2);
  const std::vector<std::size_t> hi(2, 3);
  step(costed, lo);
  step(ideal, lo);
  // Epoch 1: both switch to level 3; only `costed` pays.
  const auto obs_costed = step(costed, hi);
  const auto obs_ideal = step(ideal, hi);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(obs_costed.cores[i].instructions,
                0.8 * obs_ideal.cores[i].instructions, 1e-6);
  }
  EXPECT_NEAR(obs_costed.true_chip_power_w,
              obs_ideal.true_chip_power_w + 2.0, 1e-9);

  // Epoch 2: no change -> no switch cost. A sub-milliwatt residual remains
  // because the switch energy of epoch 1 warmed the die and leakage is
  // temperature-dependent.
  const auto obs3c = step(costed, hi);
  const auto obs3i = step(ideal, hi);
  EXPECT_NEAR(obs3c.true_chip_power_w, obs3i.true_chip_power_w, 1e-2);
}

TEST(SwitchCost, FirstEpochIsNeverCharged) {
  os::SimConfig cfg;
  cfg.switch_penalty_s = 5e-4;
  cfg.switch_energy_j = 1e-3;
  auto costed = make_system(2, cfg);
  auto ideal = make_system(2, os::SimConfig{});
  const std::vector<std::size_t> levels(2, 5);
  EXPECT_NEAR(step(costed, levels).true_chip_power_w,
              step(ideal, levels).true_chip_power_w, 1e-9);
}

TEST(SwitchCost, ConfigValidation) {
  os::SimConfig cfg;
  cfg.switch_penalty_s = cfg.epoch_s;  // would stall the whole epoch
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.switch_energy_j = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Runner, ThermalViolationsSurface) {
  // A tiny chip with an absurdly low junction limit must report violations.
  oa::ThermalParams thermal;
  thermal.max_junction_c = 46.0;
  thermal.ambient_c = 45.0;
  oa::ChipConfig chip(4, oa::VfTable::default_table(), 100.0, {}, thermal);
  os::ManyCoreSystem sys(chip, steady_workload(4));
  FixedController ctl(7);
  os::RunConfig cfg;
  cfg.epochs = 100;
  const auto r = os::run_closed_loop(sys, ctl, cfg);
  EXPECT_GT(r.thermal_violation_epochs, 0u);
}
