// libFuzzer driver for the service wire protocol and dispatcher
// (ODRL_FUZZ builds).
#include <cstddef>
#include <cstdint>

#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  odrl::fuzz::fuzz_service(data, size);
  return 0;
}
