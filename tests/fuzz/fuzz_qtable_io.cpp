// libFuzzer driver for the Q-table policy parser (ODRL_FUZZ builds).
#include <cstddef>
#include <cstdint>

#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  odrl::fuzz::fuzz_qtable(data, size);
  return 0;
}
