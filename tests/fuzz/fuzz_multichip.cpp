// libFuzzer driver for the multi-chip snapshot frame: differential
// resume + re-capture against the fixed harness fleet (ODRL_FUZZ builds).
#include <cstddef>
#include <cstdint>

#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  odrl::fuzz::fuzz_multichip(data, size);
  return 0;
}
