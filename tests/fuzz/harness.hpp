// Shared fuzz entry points for the three text parsers. Each harness feeds
// arbitrary bytes to a loader and enforces the parser contract:
//
//   * malformed input throws std::runtime_error (or std::invalid_argument
//     from nested validation) -- never crashes, never corrupts memory;
//   * accepted input round-trips: save(load(bytes)) must load again to an
//     equivalent value (the serializers and parsers agree on the format).
//
// The same functions back two drivers: the libFuzzer targets under
// tests/fuzz/ (built with -DODRL_FUZZ=ON, clang only) explore new inputs,
// and tests/fuzz_regression_test.cpp replays the committed corpus through
// them in every normal build as a tier-1 regression gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "rl/qtable_io.hpp"
#include "sim/faults.hpp"
#include "snapshot/snapshot.hpp"
#include "workload/trace_io.hpp"

namespace odrl::fuzz {

inline std::string as_string(const std::uint8_t* data, std::size_t size) {
  return std::string(reinterpret_cast<const char*>(data), size);
}

/// Anything other than the documented parse-failure exceptions escapes and
/// crashes the fuzz target -- which is exactly the point.
inline void fuzz_fault_schedule(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(as_string(data, size));
  try {
    const sim::FaultSchedule schedule = sim::load_fault_schedule(in);
    // Round-trip: what the parser accepted, the serializer must preserve.
    std::stringstream io;
    sim::save_fault_schedule(schedule, io);
    const sim::FaultSchedule back = sim::load_fault_schedule(io);
    if (back.size() != schedule.size()) {
      throw std::logic_error("fault schedule round-trip changed arity");
    }
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const sim::FaultEvent& a = schedule.events()[i];
      const sim::FaultEvent& b = back.events()[i];
      if (a.epoch != b.epoch || a.kind != b.kind || a.core != b.core ||
          a.duration != b.duration ||
          !(a.magnitude == b.magnitude ||
            (a.magnitude != a.magnitude && b.magnitude != b.magnitude))) {
        throw std::logic_error("fault schedule round-trip changed an event");
      }
    }
  } catch (const std::runtime_error&) {
    // Documented rejection path.
  } catch (const std::invalid_argument&) {
    // Nested validation rejections surface as invalid_argument.
  }
}

inline void fuzz_trace(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(as_string(data, size));
  try {
    // load_trace sniffs both formats, so one harness covers the binary
    // 'TRCE' artifact and the legacy CSV it still reads.
    const workload::RecordedTrace trace = workload::load_trace(in);
    std::stringstream io;
    workload::save_trace(trace, io);
    (void)workload::load_trace(io);
  } catch (const std::runtime_error&) {
  } catch (const std::invalid_argument&) {
  }
}

/// The snapshot frame itself: a Reader either parses the whole frame or
/// throws SnapshotError (a runtime_error). Parsed frames must rebuild
/// byte-identically -- the format is fully deterministic (ordered
/// sections, length prefixes, one checksum), so reserialization is an
/// exact round trip.
inline void fuzz_snapshot(const std::uint8_t* data, std::size_t size) {
  const std::string blob = as_string(data, size);
  try {
    snapshot::Reader r(blob);
    snapshot::Writer w;
    for (std::uint32_t tag : r.section_tags()) {
      r.open_section(tag);
      std::string payload(r.remaining(), '\0');
      r.bytes({reinterpret_cast<std::uint8_t*>(payload.data()),
               payload.size()});
      r.expect_section_end();
      w.begin_section(tag);
      w.bytes({reinterpret_cast<const std::uint8_t*>(payload.data()),
               payload.size()});
      w.end_section();
    }
    const std::string rebuilt = std::move(w).finish();
    if (rebuilt != blob) {
      throw std::logic_error("snapshot frame round-trip changed bytes");
    }
  } catch (const std::runtime_error&) {
    // SnapshotError: the documented rejection path.
  }
}

inline void fuzz_qtable(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(as_string(data, size));
  try {
    const rl::QTable table = rl::load_qtable(in);
    std::stringstream io;
    rl::save_qtable(table, io);
    (void)rl::load_qtable(io);
  } catch (const std::runtime_error&) {
  } catch (const std::invalid_argument&) {
  }
}

}  // namespace odrl::fuzz
