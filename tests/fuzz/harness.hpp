// Shared fuzz entry points for the serialized formats: the three text
// parsers, the raw snapshot frame, and the multi-chip snapshot frame
// (a differential resume harness). Each harness feeds arbitrary bytes to
// a loader and enforces the parser contract:
//
//   * malformed input throws std::runtime_error (or std::invalid_argument
//     from nested validation) -- never crashes, never corrupts memory;
//   * accepted input round-trips: save(load(bytes)) must load again to an
//     equivalent value (the serializers and parsers agree on the format).
//
// The same functions back two drivers: the libFuzzer targets under
// tests/fuzz/ (built with -DODRL_FUZZ=ON, clang only) explore new inputs,
// and tests/fuzz_regression_test.cpp replays the committed corpus through
// them in every normal build as a tier-1 regression gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "rl/qtable_io.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "sim/faults.hpp"
#include "sim/multichip.hpp"
#include "snapshot/snapshot.hpp"
#include "workload/trace_io.hpp"

namespace odrl::fuzz {

inline std::string as_string(const std::uint8_t* data, std::size_t size) {
  return std::string(reinterpret_cast<const char*>(data), size);
}

/// Anything other than the documented parse-failure exceptions escapes and
/// crashes the fuzz target -- which is exactly the point.
inline void fuzz_fault_schedule(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(as_string(data, size));
  try {
    const sim::FaultSchedule schedule = sim::load_fault_schedule(in);
    // Round-trip: what the parser accepted, the serializer must preserve.
    std::stringstream io;
    sim::save_fault_schedule(schedule, io);
    const sim::FaultSchedule back = sim::load_fault_schedule(io);
    if (back.size() != schedule.size()) {
      throw std::logic_error("fault schedule round-trip changed arity");
    }
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const sim::FaultEvent& a = schedule.events()[i];
      const sim::FaultEvent& b = back.events()[i];
      if (a.epoch != b.epoch || a.kind != b.kind || a.core != b.core ||
          a.duration != b.duration ||
          !(a.magnitude == b.magnitude ||
            (a.magnitude != a.magnitude && b.magnitude != b.magnitude))) {
        throw std::logic_error("fault schedule round-trip changed an event");
      }
    }
  } catch (const std::runtime_error&) {
    // Documented rejection path.
  } catch (const std::invalid_argument&) {
    // Nested validation rejections surface as invalid_argument.
  }
}

inline void fuzz_trace(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(as_string(data, size));
  try {
    // load_trace sniffs both formats, so one harness covers the binary
    // 'TRCE' artifact and the legacy CSV it still reads.
    const workload::RecordedTrace trace = workload::load_trace(in);
    std::stringstream io;
    workload::save_trace(trace, io);
    (void)workload::load_trace(io);
  } catch (const std::runtime_error&) {
  } catch (const std::invalid_argument&) {
  }
}

/// The snapshot frame itself: a Reader either parses the whole frame or
/// throws SnapshotError (a runtime_error). Parsed frames must rebuild
/// byte-identically -- the format is fully deterministic (ordered
/// sections, length prefixes, one checksum), so reserialization is an
/// exact round trip.
inline void fuzz_snapshot(const std::uint8_t* data, std::size_t size) {
  const std::string blob = as_string(data, size);
  try {
    snapshot::Reader r(blob);
    snapshot::Writer w;
    for (std::uint32_t tag : r.section_tags()) {
      r.open_section(tag);
      std::string payload(r.remaining(), '\0');
      r.bytes({reinterpret_cast<std::uint8_t*>(payload.data()),
               payload.size()});
      r.expect_section_end();
      w.begin_section(tag);
      w.bytes({reinterpret_cast<const std::uint8_t*>(payload.data()),
               payload.size()});
      w.end_section();
    }
    const std::string rebuilt = std::move(w).finish();
    if (rebuilt != blob) {
      throw std::logic_error("snapshot frame round-trip changed bytes");
    }
  } catch (const std::runtime_error&) {
    // SnapshotError: the documented rejection path.
  }
}

/// The fixed fleet every multichip fuzz input is interpreted against.
/// The committed seeds under tests/fuzz/corpus/multichip were captured
/// from exactly this configuration -- changing anything here (or the
/// snapshot wire format) invalidates them; FuzzRegression.
/// MultichipSeedsMatchCurrentFormat fails loudly when that happens and
/// its comment explains how to regenerate.
inline sim::FleetConfig multichip_fuzz_fleet() {
  sim::FleetConfig fc;
  fc.chips = 2;
  fc.cores = 8;
  fc.controller = "PID";
  fc.epochs = 24;
  fc.warmup_epochs = 0;
  fc.seed = 7;
  fc.sensor_noise_rel = 0.02;
  fc.keep_traces = false;
  return fc;
}

/// Differential resume harness for the multi-chip snapshot frame. Two
/// contracts, selected by what the bytes turn out to be:
///
///   * any input: run_multichip's resume path either succeeds or throws
///     SnapshotError / invalid_argument -- never crashes;
///   * a *consistent* frame (MCHD chip count matches the fleet, MCHD
///     capture epoch within the run and equal to every embedded chip's
///     own captured epoch): resuming and re-capturing at that epoch must
///     reproduce the input frame byte for byte. Snapshot capture and
///     restore are exact inverses, so even a value-mutated frame that
///     still parses must dump back out unchanged -- any canonicalization
///     on load would break resumed-run reproducibility, and this harness
///     exists to catch exactly that.
inline void fuzz_multichip(const std::uint8_t* data, std::size_t size) {
  const std::string blob = as_string(data, size);
  const sim::FleetConfig fleet_config = multichip_fuzz_fleet();

  // Structural pre-parse deciding whether the differential byte-compare
  // applies. A frame that parses but disagrees with itself (header epoch
  // vs. per-chip epochs) is still fed to the resume path below; only the
  // byte-compare is skipped, because the fleet-level re-capture epoch is
  // one number and cannot honor two.
  bool differential = false;
  std::uint64_t frame_epoch = 0;
  try {
    snapshot::Reader r(blob);
    r.open_section(sim::kSnapshotMultiChipTag);
    const std::uint64_t n_chips = r.u64();
    frame_epoch = r.u64();
    r.expect_section_end();
    if (n_chips == fleet_config.chips && frame_epoch < fleet_config.epochs) {
      differential = true;
      for (std::size_t i = 0; i < fleet_config.chips && differential; ++i) {
        r.open_section(sim::chip_section_tag(i));
        snapshot::Reader chip(r.str());
        r.expect_section_end();
        chip.open_section(sim::kSnapshotRunnerTag);
        if (chip.u64() != frame_epoch) differential = false;
      }
    }
  } catch (const std::runtime_error&) {
    // Not structurally a fleet frame; the resume below must reject it too.
  }

  try {
    sim::Fleet fleet(fleet_config);
    sim::MultiChipConfig mc;
    mc.workers = 2;
    mc.resume_snapshot = &blob;
    std::string recaptured;
    if (differential) {
      mc.snapshot_epoch = static_cast<std::size_t>(frame_epoch);
      mc.snapshot_out = &recaptured;
    }
    (void)sim::run_multichip(fleet.specs(), mc);
    if (differential && recaptured != blob) {
      // logic_error escapes the catch clauses below by design.
      throw std::logic_error(
          "multi-chip resume + re-capture changed the frame bytes");
    }
  } catch (const std::runtime_error&) {
    // SnapshotError: the documented rejection path.
  } catch (const std::invalid_argument&) {
    // Config- and validation-level rejections.
  }
}

/// The service wire protocol, three layers deep:
///
///   * FrameDecoder: the input interpreted as a TCP byte stream must split
///     into payloads or throw ServiceError(kBadFrame) -- never crash,
///     never allocate a hostile length prefix;
///   * decode_message: every payload (and the raw input) either decodes or
///     throws ServiceError/SnapshotError; what decodes must re-encode and
///     decode again to a stable byte string (the codec is deterministic);
///   * Server::handle: the full dispatcher must answer *every* payload
///     with a decodable reply -- client bytes can never throw out of it
///     (a logic_error escaping is a contract violation in the server, and
///     crashes the fuzz target by design).
inline void fuzz_service(const std::uint8_t* data, std::size_t size) {
  const std::string bytes = as_string(data, size);

  std::vector<std::string> payloads;
  try {
    service::FrameDecoder decoder;
    decoder.feed(bytes);
    std::string payload;
    while (decoder.next(payload)) payloads.push_back(std::move(payload));
  } catch (const std::runtime_error&) {
    // Hostile or truncated length prefix: documented rejection.
    payloads.clear();
  }
  // The raw input as one payload too, so unframed corpus seeds (bare
  // snapshot-framed messages) exercise the codec directly.
  payloads.push_back(bytes);

  for (const std::string& payload : payloads) {
    try {
      const service::Message msg = service::decode_message(payload);
      const std::string re = service::encode_message(msg);
      const service::Message again = service::decode_message(re);
      if (service::encode_message(again) != re) {
        throw std::logic_error("service message re-encode is not stable");
      }
    } catch (const std::runtime_error&) {
      // ServiceError / SnapshotError: the documented rejection paths.
    }
  }

  // A small fresh server per input keeps state bounded while still letting
  // a lucky valid frame open sessions and step them.
  service::ServerConfig config;
  config.workers = 1;
  config.max_sessions = 4;
  config.max_cores = 64;
  service::Server server(config);
  for (const std::string& payload : payloads) {
    // handle() never throws on client bytes; replies always decode. Either
    // failing escapes this harness and fails the target.
    (void)service::decode_message(server.handle(payload));
  }
}

inline void fuzz_qtable(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(as_string(data, size));
  try {
    const rl::QTable table = rl::load_qtable(in);
    std::stringstream io;
    rl::save_qtable(table, io);
    (void)rl::load_qtable(io);
  } catch (const std::runtime_error&) {
  } catch (const std::invalid_argument&) {
  }
}

}  // namespace odrl::fuzz
