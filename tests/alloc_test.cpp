// Allocation contract and in-place-API equivalence.
//
// PR 3's data-path refactor promises two things this file pins down:
//
//  1. The steady-state epoch loop (step_into + decide_into, telemetry off)
//     performs ZERO heap allocations once every scratch buffer has reached
//     its working capacity. Verified with a counting global operator new.
//  2. The in-place entry points are bit-identical to the allocating
//     wrappers they replaced: step() vs step_into() and decide() vs
//     decide_into() must produce the same bits at any thread count.
//
// The counting operator new replaces the global one for this whole test
// binary; gtest and setup code allocate freely, so every assertion reads a
// *delta* of the counter around the region under test.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "core/odrl_controller.hpp"
#include "power/batch_power.hpp"
#include "sim/controller_registry.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

namespace {
std::atomic<std::size_t> g_new_calls{0};
}  // namespace

// -- Counting global allocator -------------------------------------------
// Every replaceable form is provided so no allocation sneaks through a
// default aligned/array overload that bypasses the counter.

void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  const std::size_t align =
      std::max(static_cast<std::size_t>(al), sizeof(void*));
  if (posix_memalign(&p, align, n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace odrl;

namespace {

constexpr std::size_t kCores = 16;
constexpr std::size_t kWarmupEpochs = 64;
constexpr std::size_t kMeasuredEpochs = 128;

arch::ChipConfig chip() { return arch::ChipConfig::make(kCores, 0.6); }

workload::RecordedTrace shared_trace() {
  workload::GeneratedWorkload gen =
      workload::GeneratedWorkload::mixed_suite(kCores, 42);
  return gen.record(512);
}

sim::ManyCoreSystem make_system(const arch::ChipConfig& c,
                                std::size_t threads) {
  sim::SimConfig sc;
  sc.seed = 7;
  sc.threads = threads;
  static const workload::RecordedTrace trace = shared_trace();
  return sim::ManyCoreSystem(
      c, std::make_unique<workload::ReplayWorkload>(trace), sc);
}

// -- 1. Zero steady-state allocations ------------------------------------

class SteadyStateAllocs
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {
};

TEST_P(SteadyStateAllocs, EpochLoopIsAllocationFree) {
  const auto& [name, threads] = GetParam();
  const arch::ChipConfig c = chip();
  sim::ManyCoreSystem sys = make_system(c, threads);
  auto ctl = sim::make_controller(name, c);
  ctl->set_threads(threads);

  std::vector<std::size_t> levels = ctl->initial_levels(kCores);
  std::vector<std::size_t> next(kCores, 0);
  sim::EpochResult obs;

  // Warmup: every scratch buffer (SoA columns, reduce partials, predictor
  // tables, DP rows, realloc scratch, workload sample buffer) grows to its
  // steady capacity here.
  for (std::size_t e = 0; e < kWarmupEpochs; ++e) {
    sys.step_into(levels, obs);
    ctl->decide_into(obs, next);
    levels.swap(next);
  }

  const std::size_t before = g_new_calls.load(std::memory_order_relaxed);
  for (std::size_t e = 0; e < kMeasuredEpochs; ++e) {
    sys.step_into(levels, obs);
    ctl->decide_into(obs, next);
    levels.swap(next);
  }
  const std::size_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << name << " with " << threads
      << " thread(s) allocated in the steady-state loop";
}

INSTANTIATE_TEST_SUITE_P(
    AllControllers, SteadyStateAllocs,
    ::testing::Combine(::testing::Values("OD-RL", "PID", "Greedy", "MaxBIPS",
                                         "Static"),
                       ::testing::Values(std::size_t{1}, std::size_t{4})),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_t" + std::to_string(std::get<1>(info.param));
    });

// The full closed loop (runner included) must also be allocation-free per
// epoch. run_closed_loop allocates during setup, so compare two otherwise
// identical runs that differ only in epoch count: the longer run must not
// allocate a single extra block.
TEST(SteadyStateAllocs, ClosedLoopEpochsAreAllocationFree) {
  const arch::ChipConfig c = chip();
  auto run_and_count = [&](std::size_t epochs) {
    sim::ManyCoreSystem sys = make_system(c, 4);
    core::OdrlController ctl(c);
    sim::RunConfig rc;
    rc.warmup_epochs = 32;
    rc.epochs = epochs;
    rc.keep_traces = false;
    const std::size_t before = g_new_calls.load(std::memory_order_relaxed);
    (void)sim::run_closed_loop(sys, ctl, rc);
    return g_new_calls.load(std::memory_order_relaxed) - before;
  };
  const std::size_t short_run = run_and_count(64);
  const std::size_t long_run = run_and_count(192);
  EXPECT_EQ(long_run, short_run)
      << "extra epochs allocated (per-epoch leak in the closed loop)";
}

// Snapshot capture and controller hot-swap are event-epoch work: the run
// allocates at the capture epoch (Writer buffer) and at the swap epoch
// (registry construction), but the steady-state epochs around those
// events stay allocation-free. Two runs with identical event schedules
// differing only in tail length must allocate identically.
TEST(SteadyStateAllocs, SnapshotAndSwapKeepSteadyEpochsAllocationFree) {
  const arch::ChipConfig c = chip();
  auto run_and_count = [&](std::size_t epochs) {
    sim::ManyCoreSystem sys = make_system(c, 4);
    core::OdrlController ctl(c);
    std::string blob;
    sim::RunConfig rc;
    rc.warmup_epochs = 32;
    rc.epochs = epochs;
    rc.keep_traces = false;
    rc.snapshot_epoch = 8;
    rc.snapshot_out = &blob;
    rc.swaps.push_back({16, "Greedy", {}, nullptr});
    const std::size_t before = g_new_calls.load(std::memory_order_relaxed);
    (void)sim::run_closed_loop(sys, ctl, rc);
    return g_new_calls.load(std::memory_order_relaxed) - before;
  };
  const std::size_t short_run = run_and_count(64);
  const std::size_t long_run = run_and_count(192);
  EXPECT_EQ(long_run, short_run)
      << "extra epochs allocated (snapshot/swap machinery leaks into the "
         "steady-state loop)";
}

// The batched power kernel is called inside the step_into hot loop; its
// steady-state evaluation must not allocate either (the exp-v cache and
// columns are built once at construction).
TEST(SteadyStateAllocs, BatchPowerCorePowerIntoIsAllocationFree) {
  const arch::ChipConfig c = chip();
  std::vector<arch::CoreParams> per_core(kCores, c.core());
  const power::BatchPowerModel batch(per_core, c.vf_table());
  std::vector<std::size_t> level(kCores, 3);
  std::vector<workload::PhaseSample> phases(
      kCores, {.base_cpi = 1.0, .mpki = 5.0, .activity = 0.6});
  std::vector<double> temp(kCores, 70.0);
  std::vector<double> out(kCores, 0.0);
  batch.core_power_into(0, kCores, level, phases, temp, out);  // warm

  const std::size_t before = g_new_calls.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 256; ++rep) {
    batch.core_power_into(0, kCores, level, phases, temp, out);
  }
  const std::size_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "core_power_into allocated in steady state";
}

// -- 2. Bit-identity of the in-place entry points ------------------------

void expect_epochs_identical(const sim::EpochResult& a,
                             const sim::EpochResult& b) {
  ASSERT_EQ(a.cores.size(), b.cores.size());
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.epoch_s, b.epoch_s);
  EXPECT_EQ(a.budget_w, b.budget_w);
  EXPECT_EQ(a.chip_power_w, b.chip_power_w);
  EXPECT_EQ(a.true_chip_power_w, b.true_chip_power_w);
  EXPECT_EQ(a.total_ips, b.total_ips);
  EXPECT_EQ(a.max_temp_c, b.max_temp_c);
  EXPECT_EQ(a.thermal_violations, b.thermal_violations);
  EXPECT_EQ(a.mem_latency_mult, b.mem_latency_mult);
  EXPECT_EQ(a.dram_utilization, b.dram_utilization);
  for (std::size_t i = 0; i < a.cores.size(); ++i) {
    EXPECT_EQ(a.cores.level()[i], b.cores.level()[i]);
    EXPECT_EQ(a.cores.ips()[i], b.cores.ips()[i]);
    EXPECT_EQ(a.cores.instructions()[i], b.cores.instructions()[i]);
    EXPECT_EQ(a.cores.power_w()[i], b.cores.power_w()[i]);
    EXPECT_EQ(a.cores.true_power_w()[i], b.cores.true_power_w()[i]);
    EXPECT_EQ(a.cores.mem_stall_frac()[i], b.cores.mem_stall_frac()[i]);
    EXPECT_EQ(a.cores.temp_c()[i], b.cores.temp_c()[i]);
  }
}

class InPlaceBitIdentity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InPlaceBitIdentity, StepIntoMatchesStep) {
  const std::size_t threads = GetParam();
  const arch::ChipConfig c = chip();
  sim::ManyCoreSystem via_step = make_system(c, threads);
  sim::ManyCoreSystem via_into = make_system(c, threads);
  const std::size_t n_levels = c.vf_table().size();

  std::vector<std::size_t> levels(kCores, 0);
  sim::EpochResult reused;
  for (std::size_t e = 0; e < 100; ++e) {
    for (std::size_t i = 0; i < kCores; ++i) {
      levels[i] = (e + i) % n_levels;  // exercise switch costs too
    }
    // The deprecated allocating wrapper must stay bit-identical to the
    // in-place path for as long as it survives.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const sim::EpochResult fresh = via_step.step(levels);
#pragma GCC diagnostic pop
    via_into.step_into(levels, reused);
    expect_epochs_identical(fresh, reused);
  }
}

TEST_P(InPlaceBitIdentity, DecideIntoMatchesDecide) {
  const std::size_t threads = GetParam();
  const arch::ChipConfig c = chip();
  for (const char* name : {"OD-RL", "PID", "Greedy", "MaxBIPS", "Static"}) {
    sim::ManyCoreSystem sys_a = make_system(c, threads);
    sim::ManyCoreSystem sys_b = make_system(c, threads);
    auto ctl_a = sim::make_controller(name, c);
    auto ctl_b = sim::make_controller(name, c);
    ctl_a->set_threads(threads);
    ctl_b->set_threads(threads);

    std::vector<std::size_t> levels_a = ctl_a->initial_levels(kCores);
    std::vector<std::size_t> levels_b = ctl_b->initial_levels(kCores);
    std::vector<std::size_t> out_b(kCores, 0);
    sim::EpochResult obs_b;
    for (std::size_t e = 0; e < 100; ++e) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
      const sim::EpochResult obs_a = sys_a.step(levels_a);
      levels_a = ctl_a->decide(obs_a);
#pragma GCC diagnostic pop
      sys_b.step_into(levels_b, obs_b);
      ctl_b->decide_into(obs_b, out_b);
      levels_b.swap(out_b);
      ASSERT_EQ(levels_a, levels_b) << name << " diverged at epoch " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, InPlaceBitIdentity,
                         ::testing::Values(std::size_t{1}, std::size_t{4}),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

// -- 3. Legacy bridge ----------------------------------------------------
//
// decide_into() is the only virtual decision entry point since the bridge
// retirement; the non-virtual decide() shim survives one more release for
// out-of-tree callers. This is the single in-tree use of the shim, kept to
// pin its forwarding behaviour until it is deleted.

class IntoOnlyController final : public sim::Controller {
 public:
  std::string name() const override { return "into-only"; }
  std::vector<std::size_t> initial_levels(std::size_t n_cores) override {
    return std::vector<std::size_t>(n_cores, 1);
  }
  void decide_into(const sim::EpochResult& obs,
                   std::span<std::size_t> out) override {
    (void)obs;
    std::fill(out.begin(), out.end(), 2);
  }
};

TEST(LegacyBridge, DeprecatedDecideForwardsToDecideInto) {
  sim::EpochResult obs;
  obs.cores.resize(4);
  IntoOnlyController ctl;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const std::vector<std::size_t> out = ctl.decide(obs);
#pragma GCC diagnostic pop
  EXPECT_EQ(out, std::vector<std::size_t>(4, 2));
}

}  // namespace
