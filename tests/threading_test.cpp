// Tests for the deterministic fork-join pool and the bit-identical
// threading contract: an N-thread run of the simulator + controllers must
// reproduce a 1-thread run exactly (same chunk layout, same reduction
// trees, per-core noise/exploration substreams).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "arch/chip_config.hpp"
#include "baselines/greedy_controller.hpp"
#include "core/odrl_controller.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload.hpp"

namespace ou = odrl::util;
namespace oa = odrl::arch;
namespace oc = odrl::core;
namespace ob = odrl::baselines;
namespace os = odrl::sim;
namespace ow = odrl::workload;

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ou::ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ou::ThreadPool::resolve_threads(3), 3u);
  // A negative CLI value cast to size_t must fail loudly, not reserve
  // SIZE_MAX worker slots.
  EXPECT_THROW(ou::ThreadPool::resolve_threads(static_cast<std::size_t>(-1)),
               std::invalid_argument);
  EXPECT_THROW(ou::ThreadPool(100000), std::invalid_argument);
  ou::ThreadPool serial(1);
  EXPECT_EQ(serial.size(), 1u);
  ou::ThreadPool wide(4);
  EXPECT_EQ(wide.size(), 4u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ou::ThreadPool pool(4);
  for (std::size_t n : {1u, 7u, 64u, 257u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, 5, [&](std::size_t begin, std::size_t end) {
      ASSERT_LT(begin, end);
      ASSERT_LE(end, n);
      for (std::size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnGrain) {
  // Chunks must be [c*g, min(n, (c+1)*g)) regardless of pool width.
  for (std::size_t threads : {1u, 3u}) {
    ou::ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> chunks(4);
    pool.parallel_for(10, 3, [&](std::size_t begin, std::size_t end) {
      chunks[begin / 3] = {begin, end};
    });
    EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 3}));
    EXPECT_EQ(chunks[1], (std::pair<std::size_t, std::size_t>{3, 6}));
    EXPECT_EQ(chunks[2], (std::pair<std::size_t, std::size_t>{6, 9}));
    EXPECT_EQ(chunks[3], (std::pair<std::size_t, std::size_t>{9, 10}));
  }
}

TEST(ThreadPool, ReduceIsBitIdenticalAcrossThreadCounts) {
  // Sum of a float series whose value depends on the summation tree; the
  // chunk-ordered fold must make every pool width agree to the last bit.
  auto reduce_with = [](std::size_t threads) {
    ou::ThreadPool pool(threads);
    return pool.parallel_reduce(
        1000, 7, 0.0,
        [](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            s += std::sin(static_cast<double>(i)) * 1e-3 + 1.0;
          }
          return s;
        },
        [](double acc, double partial) { return acc + partial; });
  };
  const double serial = reduce_with(1);
  EXPECT_EQ(serial, reduce_with(2));
  EXPECT_EQ(serial, reduce_with(5));
  EXPECT_EQ(serial, reduce_with(8));
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  ou::ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100, 10,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 50) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must survive the throw and run subsequent jobs normally.
  std::atomic<int> total{0};
  pool.parallel_for(100, 10, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, ManyConsecutiveJobsStayCorrect) {
  ou::ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    const long sum = pool.parallel_reduce(
        100, 9, 0L,
        [](std::size_t begin, std::size_t end) {
          long s = 0;
          for (std::size_t i = begin; i < end; ++i) {
            s += static_cast<long>(i);
          }
          return s;
        },
        [](long acc, long partial) { return acc + partial; });
    ASSERT_EQ(sum, 4950);
  }
}

// ------------------------------------- closed-loop determinism contract

namespace {

os::SimConfig noisy_sim(std::size_t threads) {
  os::SimConfig cfg;
  cfg.sensor_noise_rel = 0.05;
  cfg.seed = 11;
  cfg.threads = threads;
  cfg.dram.peak_gbps = 150.0;  // exercise the sharded traffic fixed point
  return cfg;
}

/// One full closed-loop run at the given execution width, optionally with
/// a fault schedule + watchdog injected (the fault engine's serial
/// prologue and per-core sensor filters are part of the determinism
/// contract too).
template <typename MakeController>
os::RunResult run_at_width(std::size_t threads, MakeController make,
                           const os::FaultSchedule* faults = nullptr) {
  const std::size_t cores = 32;
  const oa::ChipConfig chip = oa::ChipConfig::make(cores, 0.6);
  os::ManyCoreSystem system(
      chip,
      std::make_unique<ow::GeneratedWorkload>(
          ow::GeneratedWorkload::mixed_suite(cores, 5)),
      noisy_sim(threads));
  auto controller = make(chip);
  controller->set_threads(threads);
  os::RunConfig cfg;
  cfg.warmup_epochs = 20;
  cfg.epochs = 150;
  cfg.budget_events = {{0, chip.tdp_w() * 0.9}, {60, chip.tdp_w() * 0.5}};
  cfg.faults = faults;
  cfg.watchdog.enabled = faults != nullptr;
  return os::run_closed_loop(system, *controller, cfg);
}

/// Everything except wall-clock timing must match bit-for-bit.
void expect_bit_identical(const os::RunResult& a, const os::RunResult& b) {
  EXPECT_EQ(a.fault_events_applied, b.fault_events_applied);
  EXPECT_EQ(a.watchdog_invalid_decisions, b.watchdog_invalid_decisions);
  EXPECT_EQ(a.watchdog_fallback_entries, b.watchdog_fallback_entries);
  EXPECT_EQ(a.watchdog_fallback_exits, b.watchdog_fallback_exits);
  EXPECT_EQ(a.watchdog_fallback_epochs, b.watchdog_fallback_epochs);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.otb_energy_j, b.otb_energy_j);
  EXPECT_EQ(a.time_over_s, b.time_over_s);
  EXPECT_EQ(a.peak_overshoot_w, b.peak_overshoot_w);
  EXPECT_EQ(a.mean_power_w, b.mean_power_w);
  EXPECT_EQ(a.thermal_violation_epochs, b.thermal_violation_epochs);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t e = 0; e < a.trace.size(); ++e) {
    const os::EpochTrace& ta = a.trace[e];
    const os::EpochTrace& tb = b.trace[e];
    ASSERT_EQ(ta.epoch, tb.epoch) << "epoch " << e;
    ASSERT_EQ(ta.budget_w, tb.budget_w) << "epoch " << e;
    ASSERT_EQ(ta.chip_power_w, tb.chip_power_w) << "epoch " << e;
    ASSERT_EQ(ta.true_chip_power_w, tb.true_chip_power_w) << "epoch " << e;
    ASSERT_EQ(ta.total_ips, tb.total_ips) << "epoch " << e;
    ASSERT_EQ(ta.max_temp_c, tb.max_temp_c) << "epoch " << e;
    ASSERT_EQ(ta.thermal_violations, tb.thermal_violations) << "epoch " << e;
    // decide_s is wall-clock time: excluded, like decision_time_s above.
  }
}

}  // namespace

TEST(Determinism, OdrlRunIsBitIdenticalAcrossThreadCounts) {
  auto make = [](const oa::ChipConfig& chip) {
    return std::make_unique<oc::OdrlController>(chip);
  };
  const os::RunResult serial = run_at_width(1, make);
  expect_bit_identical(serial, run_at_width(2, make));
  expect_bit_identical(serial, run_at_width(8, make));
}

TEST(Determinism, BaselineRunIsBitIdenticalAcrossThreadCounts) {
  auto make = [](const oa::ChipConfig& chip) {
    return std::make_unique<ob::GreedyController>(chip);
  };
  const os::RunResult serial = run_at_width(1, make);
  expect_bit_identical(serial, run_at_width(2, make));
  expect_bit_identical(serial, run_at_width(8, make));
}

TEST(Determinism, FaultedRunIsBitIdenticalAcrossThreadCounts) {
  // A dense storm (sensor lies, actuation faults, hotplug, budget steps)
  // with the watchdog armed: every engine mutation must stay in the serial
  // prologue or per-core slots, so thread width cannot leak into results.
  os::StormConfig storm;
  storm.sensor_rate = 0.01;
  storm.actuation_rate = 0.005;
  storm.offline_rate = 0.002;
  storm.budget_rate = 0.01;
  const os::FaultSchedule faults =
      os::FaultSchedule::random_storm(32, 150, 77, storm);
  ASSERT_FALSE(faults.empty());
  auto make = [](const oa::ChipConfig& chip) {
    return std::make_unique<oc::OdrlController>(chip);
  };
  const os::RunResult serial = run_at_width(1, make, &faults);
  EXPECT_GT(serial.fault_events_applied, 0u);
  expect_bit_identical(serial, run_at_width(2, make, &faults));
  expect_bit_identical(serial, run_at_width(4, make, &faults));
}

TEST(Determinism, EmptyScheduleLeavesRunsBitIdenticalToNoEngine) {
  // Plumbing an engine with nothing scheduled must be a perfect identity:
  // the fault path's mere presence cannot perturb a healthy run.
  const os::FaultSchedule empty;
  auto make = [](const oa::ChipConfig& chip) {
    return std::make_unique<oc::OdrlController>(chip);
  };
  const os::RunResult bare = run_at_width(2, make);
  os::RunResult plumbed = run_at_width(2, make, &empty);
  EXPECT_EQ(plumbed.fault_events_applied, 0u);
  EXPECT_EQ(plumbed.watchdog_fallback_entries, 0u);
  expect_bit_identical(bare, plumbed);
}

TEST(Determinism, RunConfigThreadsKnobReachesSystemAndController) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  os::ManyCoreSystem system(chip,
                            std::make_unique<ow::GeneratedWorkload>(
                                ow::GeneratedWorkload::mixed_suite(8, 3)));
  EXPECT_EQ(system.threads(), 1u);
  oc::OdrlController controller(chip);
  os::RunConfig cfg;
  cfg.epochs = 5;
  cfg.threads = 3;
  os::run_closed_loop(system, controller, cfg);
  EXPECT_EQ(system.threads(), 3u);
  EXPECT_EQ(controller.config().threads, 3u);
}
