// Fault-injection engine tests: schedule builder/serialization, the
// FaultEngine's per-kind semantics, the system-level wiring (sensor lies
// vs physical truth, hotplug power gating, budget steps), and the runner's
// graceful-degradation watchdog.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "arch/chip_config.hpp"
#include "baselines/static_uniform.hpp"
#include "core/odrl_controller.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

#include "loop_helpers.hpp"

namespace oa = odrl::arch;
namespace ob = odrl::baselines;
namespace oc = odrl::core;
namespace os = odrl::sim;
namespace ow = odrl::workload;
using odrl::test::step;

namespace {

constexpr std::size_t kCores = 8;

oa::ChipConfig chip() { return oa::ChipConfig::make(kCores, 0.6); }

os::ManyCoreSystem make_system(const oa::ChipConfig& c,
                               double noise_rel = 0.0) {
  os::SimConfig sc;
  sc.sensor_noise_rel = noise_rel;
  sc.seed = 17;
  return os::ManyCoreSystem(
      c,
      std::make_unique<ow::GeneratedWorkload>(
          ow::GeneratedWorkload::mixed_suite(c.n_cores(), 9)),
      sc);
}

}  // namespace

// ------------------------------------------------------- FaultSchedule

TEST(FaultSchedule, BuilderKeepsEventsSorted) {
  os::FaultSchedule s;
  s.core_offline(30, 2, 5)
      .sensor_stuck_zero(10, 4, 3)
      .budget_step(10, 20, 0.8)
      .sensor_saturate(10, 1, 4, 5.0);
  ASSERT_EQ(s.size(), 4u);
  const auto& ev = s.events();
  EXPECT_EQ(ev[0].epoch, 10u);
  EXPECT_EQ(ev[0].core, 1u);  // epoch ties break by core index
  EXPECT_EQ(ev[1].core, 4u);
  EXPECT_EQ(ev[2].core, os::kChipWide);  // chip-wide sorts last at its epoch
  EXPECT_EQ(ev[3].epoch, 30u);
  s.validate(kCores);
}

TEST(FaultSchedule, ValidateRejectsMalformedEvents) {
  {
    os::FaultSchedule s;
    s.add({5, os::FaultKind::kSensorStuckZero, 0, /*duration=*/0, 0.0});
    EXPECT_THROW(s.validate(kCores), std::invalid_argument);
  }
  {
    os::FaultSchedule s;
    s.sensor_stuck_zero(5, kCores, 3);  // core out of range
    EXPECT_THROW(s.validate(kCores), std::invalid_argument);
  }
  {
    os::FaultSchedule s;
    s.add({5, os::FaultKind::kBudgetStep, 3, 10, 0.8});  // not chip-wide
    EXPECT_THROW(s.validate(kCores), std::invalid_argument);
  }
  {
    os::FaultSchedule s;
    s.sensor_saturate(5, 0, 3, 0.0);  // scale must be positive
    EXPECT_THROW(s.validate(kCores), std::invalid_argument);
  }
  {
    os::FaultSchedule s;
    s.add({5, os::FaultKind::kActuationDelay, 0, 10, 2.5});  // non-integral
    EXPECT_THROW(s.validate(kCores), std::invalid_argument);
  }
}

TEST(FaultSchedule, SaveLoadRoundTripsExactly) {
  os::FaultSchedule s;
  s.sensor_stuck_zero(3, 0, 7)
      .sensor_stuck_last(9, 1, 2)
      .sensor_saturate(12, 2, 4, 7.25)
      .actuation_delay(15, 3, 6, 2)
      .actuation_drop(20, 4, 5)
      .budget_step(25, 10, 0.675)
      .core_offline(30, 5, 8);
  std::stringstream io;
  os::save_fault_schedule(s, io);
  const os::FaultSchedule back = os::load_fault_schedule(io);
  ASSERT_EQ(back.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const os::FaultEvent& a = s.events()[i];
    const os::FaultEvent& b = back.events()[i];
    EXPECT_EQ(a.epoch, b.epoch) << i;
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.core, b.core) << i;
    EXPECT_EQ(a.duration, b.duration) << i;
    EXPECT_EQ(a.magnitude, b.magnitude) << i;  // bit-exact via to_chars
  }
  back.validate(kCores);
}

TEST(FaultSchedule, LoadRejectsMalformedText) {
  auto load = [](const std::string& text) {
    std::stringstream in(text);
    return os::load_fault_schedule(in);
  };
  EXPECT_THROW(load(""), std::runtime_error);  // no magic
  EXPECT_THROW(load("# wrong magic\n"), std::runtime_error);
  EXPECT_THROW(load("# odrl-faults v1\nwrong,header\n"), std::runtime_error);
  const std::string head = "# odrl-faults v1\nepoch,kind,core,duration,magnitude\n";
  EXPECT_THROW(load(head + "5,sensor_stuck_zero,0,3\n"),
               std::runtime_error);  // wrong arity
  EXPECT_THROW(load(head + "5,alpha_strike,0,3,0\n"),
               std::runtime_error);  // unknown kind
  EXPECT_THROW(load(head + "5,sensor_stuck_zero,0,0,0\n"),
               std::runtime_error);  // zero duration
  EXPECT_THROW(load(head + "5,sensor_stuck_zero,*,3,0\n"),
               std::runtime_error);  // per-core kind, chip-wide core
  EXPECT_THROW(load(head + "5,budget_step,*,3,nope\n"),
               std::runtime_error);  // bad magnitude
  EXPECT_THROW(load(head + "5,budget_step,*,3,-1\n"),
               std::runtime_error);  // non-positive magnitude
  // Comments and blank lines are fine.
  const os::FaultSchedule ok =
      load(head + "\n# a comment\n5,core_offline,2,3,0\n");
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok.events()[0].kind, os::FaultKind::kCoreOffline);
}

TEST(FaultSchedule, RandomStormIsDeterministicAndValid) {
  const os::FaultSchedule a = os::FaultSchedule::random_storm(16, 500, 42);
  const os::FaultSchedule b = os::FaultSchedule::random_storm(16, 500, 42);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);  // default rates make a non-empty 500-epoch storm
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].epoch, b.events()[i].epoch);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].core, b.events()[i].core);
    EXPECT_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
  }
  a.validate(16);
  const os::FaultSchedule other = os::FaultSchedule::random_storm(16, 500, 43);
  auto text = [](const os::FaultSchedule& s) {
    std::stringstream out;
    os::save_fault_schedule(s, out);
    return out.str();
  };
  EXPECT_NE(text(a), text(other));  // different seed, different storm
}

TEST(FaultSchedule, StormSubstreamsArePerCorePure) {
  // Core i's fault stream is a pure function of (seed, i): growing the
  // chip must not change what happens to the cores that already existed.
  const os::FaultSchedule small = os::FaultSchedule::random_storm(8, 400, 7);
  const os::FaultSchedule big = os::FaultSchedule::random_storm(16, 400, 7);
  auto core_events = [](const os::FaultSchedule& s, std::size_t max_core) {
    std::vector<os::FaultEvent> out;
    for (const os::FaultEvent& e : s.events()) {
      if (e.core != os::kChipWide && e.core < max_core) out.push_back(e);
    }
    return out;
  };
  const auto a = core_events(small, 8);
  const auto b = core_events(big, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].epoch, b[i].epoch) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].core, b[i].core) << i;
    EXPECT_EQ(a[i].magnitude, b[i].magnitude) << i;
  }
}

// --------------------------------------------------------- FaultEngine

TEST(FaultEngine, SensorStuckZeroWindowsTheReadings) {
  os::FaultSchedule s;
  s.sensor_stuck_zero(2, 1, 3);  // active engine epochs [2, 5)
  os::FaultEngine engine(s, 4);
  for (std::size_t e = 0; e < 8; ++e) {
    engine.begin_epoch();
    const double ips = engine.filter_ips(1, 100.0 + static_cast<double>(e));
    const double w = engine.filter_power(1, 5.0);
    const double other = engine.filter_power(0, 3.0);
    EXPECT_EQ(other, 3.0);  // untargeted core always passes through
    if (e >= 2 && e < 5) {
      EXPECT_EQ(ips, 0.0) << e;
      EXPECT_EQ(w, 0.0) << e;
      EXPECT_TRUE(engine.any_active());
      EXPECT_TRUE(engine.any_sensor_fault());
    } else {
      EXPECT_EQ(ips, 100.0 + static_cast<double>(e)) << e;
      EXPECT_EQ(w, 5.0) << e;
      EXPECT_FALSE(engine.any_active());
    }
  }
  EXPECT_EQ(engine.counts().sensor, 1u);
  EXPECT_EQ(engine.counts().total(), 1u);
}

TEST(FaultEngine, SensorStuckLastFreezesTheLastHealthyReading) {
  os::FaultSchedule s;
  s.sensor_stuck_last(3, 0, 2);
  os::FaultEngine engine(s, 1);
  double last_healthy = 0.0;
  for (std::size_t e = 0; e < 7; ++e) {
    engine.begin_epoch();
    const double fed = 10.0 * static_cast<double>(e + 1);
    const double got = engine.filter_power(0, fed);
    if (e >= 3 && e < 5) {
      EXPECT_EQ(got, last_healthy) << e;  // frozen at epoch 2's reading
    } else {
      EXPECT_EQ(got, fed) << e;
      last_healthy = fed;
    }
  }
}

TEST(FaultEngine, SensorSaturateScalesReadings) {
  os::FaultSchedule s;
  s.sensor_saturate(0, 0, 2, 10.0);
  os::FaultEngine engine(s, 1);
  engine.begin_epoch();
  EXPECT_EQ(engine.filter_ips(0, 2.0), 20.0);
  EXPECT_EQ(engine.filter_power(0, 1.5), 15.0);
  engine.begin_epoch();
  EXPECT_EQ(engine.filter_power(0, 1.5), 15.0);
  engine.begin_epoch();  // expired
  EXPECT_EQ(engine.filter_power(0, 1.5), 1.5);
}

TEST(FaultEngine, ActuationDelayLagsTheRequestStream) {
  os::FaultSchedule s;
  s.actuation_delay(3, 0, 4, 2);  // active [3, 7), lag 2 epochs
  os::FaultEngine engine(s, 1);
  std::vector<std::size_t> req(1), app(1);
  std::vector<std::size_t> applied;
  for (std::size_t e = 0; e < 9; ++e) {
    engine.begin_epoch();
    req[0] = e;  // request level == epoch index, easy to trace
    engine.apply_actuation(req, app);
    applied.push_back(app[0]);
  }
  // Healthy epochs apply the request; delayed epochs apply the request
  // from 2 epochs earlier.
  const std::vector<std::size_t> want = {0, 1, 2, 1, 2, 3, 4, 7, 8};
  EXPECT_EQ(applied, want);
  EXPECT_EQ(engine.counts().actuation, 1u);
}

TEST(FaultEngine, ActuationDropHoldsTheLastAppliedLevel) {
  os::FaultSchedule s;
  s.actuation_drop(2, 0, 3);  // active [2, 5)
  os::FaultEngine engine(s, 2);
  std::vector<std::size_t> req(2), app(2);
  std::vector<std::size_t> applied;
  for (std::size_t e = 0; e < 7; ++e) {
    engine.begin_epoch();
    req[0] = e;
    req[1] = 7;  // control core: always applied verbatim
    engine.apply_actuation(req, app);
    applied.push_back(app[0]);
    EXPECT_EQ(app[1], 7u);
  }
  // Epoch 1's level (1) holds through the drop window [2, 5).
  const std::vector<std::size_t> want = {0, 1, 1, 1, 1, 5, 6};
  EXPECT_EQ(applied, want);
}

TEST(FaultEngine, FirstEpochDropPassesThrough) {
  // A drop with no previously applied level has nothing to hold: the
  // request goes through rather than some invented level.
  os::FaultSchedule s;
  s.actuation_drop(0, 0, 2);
  os::FaultEngine engine(s, 1);
  std::vector<std::size_t> req{4}, app{0};
  engine.begin_epoch();
  engine.apply_actuation(req, app);
  EXPECT_EQ(app[0], 4u);
  req[0] = 6;
  engine.begin_epoch();
  engine.apply_actuation(req, app);
  EXPECT_EQ(app[0], 4u);  // now there is a last applied level to hold
}

TEST(FaultEngine, BudgetStepsFoldAndExpire) {
  os::FaultSchedule s;
  s.budget_step(1, 4, 0.8).budget_step(3, 4, 0.5);
  os::FaultEngine engine(s, 2);
  std::vector<double> factors;
  for (std::size_t e = 0; e < 8; ++e) {
    engine.begin_epoch();
    factors.push_back(engine.budget_factor());
  }
  const std::vector<double> want = {1.0, 0.8, 0.8, 0.4, 0.4, 0.5, 0.5, 1.0};
  ASSERT_EQ(factors.size(), want.size());
  for (std::size_t e = 0; e < want.size(); ++e) {
    EXPECT_DOUBLE_EQ(factors[e], want[e]) << e;
  }
  EXPECT_EQ(engine.counts().budget, 2u);
}

TEST(FaultEngine, OfflineMaskTracksHotplugWindows) {
  os::FaultSchedule s;
  s.core_offline(2, 1, 3);
  os::FaultEngine engine(s, 3);
  for (std::size_t e = 0; e < 7; ++e) {
    engine.begin_epoch();
    EXPECT_FALSE(engine.core_offline(0));
    EXPECT_FALSE(engine.core_offline(2));
    EXPECT_EQ(engine.core_offline(1), e >= 2 && e < 5) << e;
  }
  EXPECT_EQ(engine.counts().hotplug, 1u);
}

TEST(FaultEngine, RejectsScheduleForWrongChip) {
  os::FaultSchedule s;
  s.sensor_stuck_zero(0, 7, 2);
  EXPECT_NO_THROW(os::FaultEngine(s, 8));
  EXPECT_THROW(os::FaultEngine(s, 4), std::invalid_argument);
}

TEST(SafeUniformLevel, MatchesWorstCaseProvisioning) {
  const oa::ChipConfig c = chip();
  const double hot = c.thermal().max_junction_c;
  auto worst = [&](std::size_t l) {
    const oa::VfPoint& vf = c.vf_table()[l];
    return c.core().total_power_w(vf.voltage_v, vf.freq_ghz, 1.0, hot) *
           static_cast<double>(c.n_cores());
  };
  // Tiny budget: only the floor is "safe" (by convention).
  EXPECT_EQ(os::safe_uniform_level(c, 1e-3), 0u);
  // Unbounded budget: the top level fits.
  EXPECT_EQ(os::safe_uniform_level(c, 1e9), c.vf_table().size() - 1);
  // Chosen level fits; the next one (if any) must not.
  for (double budget : {worst(2) * 1.01, worst(4) * 1.01, c.tdp_w()}) {
    const std::size_t l = os::safe_uniform_level(c, budget);
    EXPECT_LE(worst(l), budget);
    if (l + 1 < c.vf_table().size()) EXPECT_GT(worst(l + 1), budget);
  }
  // The Static baseline provisions with the identical rule.
  ob::StaticUniformController static_ctl(c);
  EXPECT_EQ(static_ctl.chosen_level(), os::safe_uniform_level(c, c.tdp_w()));
}

// ------------------------------------------------ system-level wiring

TEST(FaultSystem, SensorFaultLiesToTheControllerNotTheEvaluation) {
  const oa::ChipConfig c = chip();
  os::ManyCoreSystem sys = make_system(c);
  os::FaultSchedule s;
  s.sensor_stuck_zero(0, 2, 100);
  os::FaultEngine engine(s, kCores);
  sys.set_fault_engine(&engine);
  std::vector<std::size_t> levels(kCores, 3);
  for (int e = 0; e < 5; ++e) {
    const os::EpochResult obs = step(sys, levels);
    EXPECT_EQ(obs.cores.power_w()[2], 0.0);  // the sensor lies...
    EXPECT_EQ(obs.cores.ips()[2], 0.0);
    EXPECT_GT(obs.cores.true_power_w()[2], 0.0);  // ...the truth does not
    EXPECT_GT(obs.true_chip_power_w, 0.0);
    EXPECT_EQ(obs.cores.online()[2], 1);  // faulted, but not offline
  }
  sys.set_fault_engine(nullptr);
}

TEST(FaultSystem, OfflineCoreIsPowerGated) {
  const oa::ChipConfig c = chip();
  os::ManyCoreSystem sys = make_system(c);
  os::FaultSchedule s;
  s.core_offline(1, 5, 2);  // core 5 out for engine epochs [1, 3)
  os::FaultEngine engine(s, kCores);
  sys.set_fault_engine(&engine);
  std::vector<std::size_t> levels(kCores, 4);
  for (int e = 0; e < 5; ++e) {
    const os::EpochResult obs = step(sys, levels);
    const bool off = e >= 1 && e < 3;
    EXPECT_EQ(obs.cores.online()[5], off ? 0 : 1) << e;
    if (off) {
      EXPECT_EQ(obs.cores.true_power_w()[5], 0.0) << e;
      EXPECT_EQ(obs.cores.power_w()[5], 0.0) << e;
      EXPECT_EQ(obs.cores.instructions()[5], 0.0) << e;
      EXPECT_EQ(obs.cores.ips()[5], 0.0) << e;
    } else {
      EXPECT_GT(obs.cores.true_power_w()[5], 0.0) << e;
      EXPECT_GT(obs.cores.instructions()[5], 0.0) << e;
    }
    EXPECT_GT(obs.cores.true_power_w()[4], 0.0) << e;  // neighbors unaffected
  }
  sys.set_fault_engine(nullptr);
}

TEST(FaultSystem, BudgetStepScalesTheObservedBudget) {
  const oa::ChipConfig c = chip();
  os::ManyCoreSystem sys = make_system(c);
  const double base = sys.budget_w();
  os::FaultSchedule s;
  s.budget_step(1, 2, 0.75);
  os::FaultEngine engine(s, kCores);
  sys.set_fault_engine(&engine);
  std::vector<std::size_t> levels(kCores, 2);
  for (int e = 0; e < 5; ++e) {
    const os::EpochResult obs = step(sys, levels);
    const double want = (e >= 1 && e < 3) ? base * 0.75 : base;
    EXPECT_DOUBLE_EQ(obs.budget_w, want) << e;
  }
  sys.set_fault_engine(nullptr);
}

TEST(FaultSystem, RejectsEngineForWrongChip) {
  os::ManyCoreSystem sys = make_system(chip());
  os::FaultSchedule s;
  s.sensor_stuck_zero(0, 0, 1);
  os::FaultEngine engine(s, kCores + 1);
  EXPECT_THROW(sys.set_fault_engine(&engine), std::invalid_argument);
}

// ----------------------------------------------- runner fault plumbing

namespace {

os::RunResult run_odrl(const os::FaultSchedule* faults,
                       os::WatchdogConfig wd = {}, double noise = 0.02) {
  const oa::ChipConfig c = chip();
  os::ManyCoreSystem sys = make_system(c, noise);
  oc::OdrlController ctl(c);
  os::RunConfig cfg;
  cfg.warmup_epochs = 10;
  cfg.epochs = 120;
  cfg.faults = faults;
  cfg.watchdog = wd;
  return os::run_closed_loop(sys, ctl, cfg);
}

void expect_same_run(const os::RunResult& a, const os::RunResult& b) {
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.mean_power_w, b.mean_power_w);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t e = 0; e < a.trace.size(); ++e) {
    ASSERT_EQ(a.trace[e].chip_power_w, b.trace[e].chip_power_w) << e;
    ASSERT_EQ(a.trace[e].total_ips, b.trace[e].total_ips) << e;
  }
}

}  // namespace

TEST(FaultRunner, NullAndEmptySchedulesAreIdentityOperations) {
  const os::RunResult bare = run_odrl(nullptr);
  const os::FaultSchedule empty;
  const os::RunResult with_empty = run_odrl(&empty);
  expect_same_run(bare, with_empty);
  EXPECT_EQ(with_empty.fault_events_applied, 0u);

  // An engine whose events all lie beyond the horizon is attached and
  // consulted every epoch -- and must still not perturb a single bit.
  os::FaultSchedule far_future;
  far_future.sensor_stuck_zero(1000000, 0, 5);
  const os::RunResult with_idle_engine = run_odrl(&far_future);
  expect_same_run(bare, with_idle_engine);
  EXPECT_EQ(with_idle_engine.fault_events_applied, 0u);
}

TEST(FaultRunner, EnabledWatchdogIsIdleOnHealthyRuns) {
  os::WatchdogConfig wd;
  wd.enabled = true;
  const os::RunResult guarded = run_odrl(nullptr, wd);
  const os::RunResult bare = run_odrl(nullptr);
  expect_same_run(bare, guarded);  // observes, never intervenes
  EXPECT_EQ(guarded.watchdog_invalid_decisions, 0u);
  EXPECT_EQ(guarded.watchdog_fallback_entries, 0u);
  EXPECT_EQ(guarded.watchdog_fallback_epochs, 0u);
}

TEST(FaultRunner, FaultsAreCountedInTheResult) {
  os::FaultSchedule s;
  s.sensor_stuck_zero(5, 0, 10)
      .actuation_drop(20, 1, 10)
      .budget_step(40, 10, 0.9)
      .core_offline(60, 2, 10);
  const os::RunResult r = run_odrl(&s);
  EXPECT_EQ(r.fault_events_applied, 4u);
}

namespace {

/// A controller that deliberately emits out-of-range levels on a cadence:
/// the watchdog must sanitize them (instead of the checked build aborting)
/// and hold the offender at the safe level.
class RogueController final : public os::Controller {
 public:
  explicit RogueController(std::size_t period) : period_(period) {}
  std::string name() const override { return "Rogue"; }
  std::vector<std::size_t> initial_levels(std::size_t n_cores) override {
    return std::vector<std::size_t>(n_cores, 1);
  }
  void decide_into(const os::EpochResult& obs,
                   std::span<std::size_t> out) override {
    ++calls_;
    std::fill(out.begin(), out.end(), std::size_t{1});
    if (calls_ % period_ == 0) out[0] = 1000000;  // way out of range
    (void)obs;
  }

 private:
  std::size_t period_;
  std::size_t calls_ = 0;
};

}  // namespace

TEST(FaultRunner, WatchdogSanitizesInvalidDecisions) {
  const oa::ChipConfig c = chip();
  os::ManyCoreSystem sys = make_system(c);
  RogueController rogue(/*period=*/40);
  os::WatchdogConfig wd;
  wd.enabled = true;
  wd.hold_epochs = 10;
  os::RunConfig cfg;
  cfg.epochs = 100;
  cfg.watchdog = wd;
  // Without the watchdog a checked build would abort on the bad level;
  // with it the run must complete and account for every intervention.
  const os::RunResult r = os::run_closed_loop(sys, rogue, cfg);
  EXPECT_EQ(r.epochs, 100u);
  EXPECT_EQ(r.watchdog_invalid_decisions, 2u);  // epochs 40 and 80
  EXPECT_EQ(r.watchdog_fallback_entries, 2u);
  EXPECT_EQ(r.watchdog_fallback_exits, 2u);
  EXPECT_EQ(r.watchdog_fallback_epochs, 20u);  // two 10-epoch holds
}

TEST(FaultRunner, WatchdogTripsChipWideUnderSustainedViolations) {
  // A max-level controller under a deep budget-step fault: measured chip
  // power exceeds the (shrunken) budget for epochs on end, so the chip-wide
  // trip must fire and drag every core to the safe level -- which by
  // construction fits the faulted budget.
  const oa::ChipConfig c = chip();
  os::ManyCoreSystem sys = make_system(c);

  class MaxLevel final : public os::Controller {
   public:
    explicit MaxLevel(std::size_t top) : top_(top) {}
    std::string name() const override { return "MaxLevel"; }
    std::vector<std::size_t> initial_levels(std::size_t n_cores) override {
      return std::vector<std::size_t>(n_cores, top_);
    }
    void decide_into(const os::EpochResult&,
                     std::span<std::size_t> out) override {
      std::fill(out.begin(), out.end(), top_);
    }

   private:
    std::size_t top_;
  };
  MaxLevel ctl(c.vf_table().size() - 1);

  os::FaultSchedule s;
  s.budget_step(10, 80, 0.5);  // halve the budget for epochs [10, 90)
  os::WatchdogConfig wd;
  wd.enabled = true;
  wd.violation_epochs = 3;
  wd.hold_epochs = 30;
  os::RunConfig cfg;
  cfg.epochs = 100;
  cfg.faults = &s;
  cfg.watchdog = wd;
  const os::RunResult r = os::run_closed_loop(sys, ctl, cfg);
  EXPECT_GE(r.watchdog_fallback_entries, kCores);  // the trip is chip-wide
  EXPECT_GT(r.watchdog_fallback_epochs, 0u);

  // Once the whole chip is in fallback, worst-case provisioning holds the
  // faulted budget. (The trip takes violation_epochs to confirm plus one
  // epoch to take effect; check the tail of the hold window.)
  const double faulted_budget = sys.budget_w() * 0.5;
  const std::size_t first_safe = 10 + wd.violation_epochs + 2;
  for (std::size_t e = first_safe; e < first_safe + 20; ++e) {
    EXPECT_LE(r.trace[e].true_chip_power_w, faulted_budget * (1.0 + 1e-6))
        << "epoch " << e;
  }
}
