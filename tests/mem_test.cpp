// Tests for the shared-DRAM bandwidth contention model and its coupling
// into the system simulator.
#include <gtest/gtest.h>

#include <memory>

#include "arch/chip_config.hpp"
#include "mem/dram_model.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

#include "loop_helpers.hpp"

namespace om = odrl::mem;
namespace oa = odrl::arch;
namespace os = odrl::sim;
namespace ow = odrl::workload;
using odrl::test::step;

TEST(DramModel, DisabledIsIdentity) {
  const om::DramModel m(om::DramConfig{});
  EXPECT_FALSE(m.enabled());
  EXPECT_DOUBLE_EQ(m.utilization(1e12), 0.0);
  EXPECT_DOUBLE_EQ(m.solve_multiplier([](double) { return 1e12; }), 1.0);
}

TEST(DramModel, QueueMultiplierShape) {
  om::DramConfig cfg;
  cfg.peak_gbps = 10.0;
  const om::DramModel m(cfg);
  EXPECT_DOUBLE_EQ(m.queue_multiplier(0.0), 1.0);
  // Monotone increasing.
  double prev = 1.0;
  for (double u : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    const double mult = m.queue_multiplier(u);
    EXPECT_GT(mult, prev);
    prev = mult;
  }
  // Exact M/D/1 value at u = 0.5: 1 + 0.25/1 = 1.25.
  EXPECT_NEAR(m.queue_multiplier(0.5), 1.25, 1e-12);
  // Clamped at max_utilization.
  EXPECT_DOUBLE_EQ(m.queue_multiplier(0.99), m.queue_multiplier(10.0));
  EXPECT_THROW(m.queue_multiplier(-0.1), std::invalid_argument);
}

TEST(DramModel, UtilizationClampsAndValidates) {
  om::DramConfig cfg;
  cfg.peak_gbps = 10.0;
  cfg.max_utilization = 0.9;
  const om::DramModel m(cfg);
  EXPECT_NEAR(m.utilization(5e9), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(m.utilization(100e9), 0.9);  // clamp
  EXPECT_THROW(m.utilization(-1.0), std::invalid_argument);
}

TEST(DramModel, ConfigValidation) {
  om::DramConfig cfg;
  cfg.peak_gbps = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.line_bytes = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.max_utilization = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(DramModel, FixedPointConvergesAndIsConsistent) {
  om::DramConfig cfg;
  cfg.peak_gbps = 8.0;
  const om::DramModel m(cfg);
  // Traffic decreasing in the multiplier (as the CPI model guarantees).
  auto traffic_at = [](double mult) { return 12e9 / mult; };
  const double solved = m.solve_multiplier(traffic_at);
  EXPECT_GT(solved, 1.0);
  // The solution satisfies its own equation.
  const double check = m.queue_multiplier(m.utilization(traffic_at(solved)));
  EXPECT_NEAR(solved, check, 1e-3);
}

TEST(DramModel, LightLoadLeavesLatencyAlone) {
  om::DramConfig cfg;
  cfg.peak_gbps = 1000.0;  // effectively infinite
  const om::DramModel m(cfg);
  const double solved = m.solve_multiplier([](double) { return 1e9; });
  EXPECT_NEAR(solved, 1.0, 1e-3);
}

// ---- system coupling

namespace {
os::ManyCoreSystem memory_heavy_system(double peak_gbps) {
  const oa::ChipConfig chip = oa::ChipConfig::make(16, 0.9);
  os::SimConfig sc;
  sc.dram.peak_gbps = peak_gbps;
  return os::ManyCoreSystem(
      chip,
      std::make_unique<ow::GeneratedWorkload>(
          16, ow::benchmark_by_name("memory.stream"), 1),
      sc);
}
}  // namespace

TEST(DramContention, ThrottlesMemoryHeavyChips) {
  auto contended = memory_heavy_system(20.0);
  auto unlimited = memory_heavy_system(0.0);
  const std::vector<std::size_t> levels(16, 7);
  const auto obs_c = step(contended, levels);
  const auto obs_u = step(unlimited, levels);
  EXPECT_GT(obs_c.mem_latency_mult, 1.05);
  EXPECT_GT(obs_c.dram_utilization, 0.5);
  EXPECT_LT(obs_c.total_ips, obs_u.total_ips);
  EXPECT_DOUBLE_EQ(obs_u.mem_latency_mult, 1.0);
  EXPECT_DOUBLE_EQ(obs_u.dram_utilization, 0.0);
}

TEST(DramContention, GenerousBandwidthIsTransparent) {
  auto generous = memory_heavy_system(10000.0);
  auto unlimited = memory_heavy_system(0.0);
  const std::vector<std::size_t> levels(16, 7);
  const auto obs_g = step(generous, levels);
  const auto obs_u = step(unlimited, levels);
  EXPECT_NEAR(obs_g.total_ips, obs_u.total_ips, obs_u.total_ips * 1e-3);
}

TEST(DramContention, FrequencyBuysLessUnderContention) {
  // The coupling DVFS controllers face: with a saturated memory system,
  // raising frequency buys even less than the CPI stack alone predicts.
  auto make = [](double peak) {
    return memory_heavy_system(peak);
  };
  auto gain = [&](double peak) {
    auto lo_sys = make(peak);
    auto hi_sys = make(peak);
    const auto lo = step(lo_sys, std::vector<std::size_t>(16, 0));
    const auto hi = step(hi_sys, std::vector<std::size_t>(16, 7));
    return hi.total_ips / lo.total_ips;
  };
  EXPECT_LT(gain(20.0), gain(0.0));
}
