// Property-based sweep: randomized (but seeded) chip configurations x
// fault schedules x controllers, asserting the validate.hpp invariants on
// every epoch of every run. The sweep explores corners no hand-written
// case covers -- odd core counts, hostile storm densities, budget squeezes
// -- while staying deterministic: every trial derives from a SplitMix64
// substream of one root seed, so a failure reproduces exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "sim/controller_registry.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "sim/validate.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace oa = odrl::arch;
namespace os = odrl::sim;
namespace ou = odrl::util;
namespace ow = odrl::workload;

namespace {

constexpr std::uint64_t kRootSeed = 0x0dd1f4a7u;

struct Trial {
  std::string controller;
  std::size_t cores = 0;
  double tdp_scale = 0.6;
  double noise_rel = 0.0;
  std::uint64_t sim_seed = 0;
  std::uint64_t storm_seed = 0;
  bool with_faults = false;
  bool watchdog = false;
  std::size_t epochs = 0;
};

/// Draws one trial's shape from the trial's own substream.
Trial draw_trial(std::uint64_t substream, std::size_t index) {
  ou::Rng rng(substream);
  const auto names = os::registered_controllers();
  Trial t;
  t.controller = names[index % names.size()];
  t.cores = static_cast<std::size_t>(rng.between(2, 24));
  t.tdp_scale = rng.uniform(0.3, 0.9);
  t.noise_rel = rng.chance(0.5) ? rng.uniform(0.0, 0.2) : 0.0;
  t.sim_seed = rng.below(1u << 20);
  t.storm_seed = rng.below(1u << 20);
  t.with_faults = rng.chance(0.7);
  t.watchdog = rng.chance(0.5);
  t.epochs = static_cast<std::size_t>(rng.between(40, 120));
  return t;
}

/// Runs the closed loop by hand (step + decide, like the runner's epoch
/// lambda) so every intermediate observation can be validated -- the
/// invariants are checked here explicitly, in every build mode, not just
/// when ODRL_CHECKED compiled the library's own call sites in.
void run_trial(const Trial& t) {
  SCOPED_TRACE("controller=" + t.controller +
               " cores=" + std::to_string(t.cores) +
               " sim_seed=" + std::to_string(t.sim_seed) +
               " storm_seed=" + std::to_string(t.storm_seed) +
               " faults=" + std::to_string(t.with_faults));
  const oa::ChipConfig chip = oa::ChipConfig::make(t.cores, t.tdp_scale);
  const std::size_t n_levels = chip.vf_table().size();
  os::SimConfig sc;
  sc.sensor_noise_rel = t.noise_rel;
  sc.seed = t.sim_seed;
  os::ManyCoreSystem system(
      chip,
      std::make_unique<ow::GeneratedWorkload>(ow::GeneratedWorkload::
                                                  mixed_suite(t.cores, 21)),
      sc);
  auto controller = os::make_controller(t.controller, chip);

  os::StormConfig knobs;
  knobs.sensor_rate = 0.02;
  knobs.actuation_rate = 0.01;
  knobs.offline_rate = 0.01;
  knobs.budget_rate = 0.02;
  knobs.min_duration = 2;
  knobs.max_duration = 20;
  os::FaultSchedule storm;
  std::unique_ptr<os::FaultEngine> engine;
  if (t.with_faults) {
    storm = os::FaultSchedule::random_storm(t.cores, t.epochs, t.storm_seed,
                                            knobs);
    engine = std::make_unique<os::FaultEngine>(storm, t.cores);
    system.set_fault_engine(engine.get());
  }

  const std::size_t safe_level = os::safe_uniform_level(chip, chip.tdp_w());
  std::vector<std::size_t> levels = controller->initial_levels(t.cores);
  std::vector<std::size_t> next(t.cores, 0);
  os::EpochResult obs;
  for (std::size_t e = 0; e < t.epochs; ++e) {
    system.step_into(levels, obs);

    // -- The paper invariants, every epoch, every build mode --
    const bool noisy =
        t.noise_rel > 0.0 || (engine && engine->any_sensor_fault());
    ASSERT_NO_THROW(os::validate_epoch(obs, t.cores, n_levels, noisy))
        << "epoch " << e;
    // Finite, non-negative chip power; offline cores draw ~0 true watts.
    ASSERT_TRUE(std::isfinite(obs.true_chip_power_w)) << "epoch " << e;
    ASSERT_GE(obs.true_chip_power_w, 0.0) << "epoch " << e;
    for (std::size_t i = 0; i < t.cores; ++i) {
      if (obs.cores.online()[i] == 0) {
        ASSERT_LE(obs.cores.true_power_w()[i], 1e-9)
            << "offline core " << i << " draws power at epoch " << e;
        ASSERT_EQ(obs.cores.instructions()[i], 0.0)
            << "offline core " << i << " retires at epoch " << e;
      }
    }
    // The observed budget only moves through fault steps here (no cap
    // events in this loop), and never to something unphysical.
    ASSERT_TRUE(std::isfinite(obs.budget_w)) << "epoch " << e;
    ASSERT_GT(obs.budget_w, 0.0) << "epoch " << e;

    ASSERT_NO_THROW(os::validate_out_span(obs, next)) << "epoch " << e;
    controller->decide_into(obs, next);
    if (t.watchdog) {
      // The runner's sanitation rule, applied the same way: out-of-range
      // decisions fall back to the safe static level.
      for (std::size_t i = 0; i < t.cores; ++i) {
        if (next[i] >= n_levels) next[i] = safe_level;
      }
    }
    // Level validity: the registered controllers must never need the
    // sanitation above -- assert it fires zero times for them.
    ASSERT_NO_THROW(os::validate_levels(next, n_levels)) << "epoch " << e;
    levels.swap(next);
  }
  system.set_fault_engine(nullptr);
}

}  // namespace

// One gtest per trial index keeps failures addressable and lets ctest -j
// spread the sweep across workers.
class PropertySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PropertySweep, InvariantsHoldEveryEpoch) {
  const std::size_t index = GetParam();
  ou::SplitMix64 seeder(kRootSeed);
  std::uint64_t substream = 0;
  for (std::size_t i = 0; i <= index; ++i) substream = seeder.next();
  run_trial(draw_trial(substream, index));
}

INSTANTIATE_TEST_SUITE_P(Seeded, PropertySweep, ::testing::Range<std::size_t>(0, 40));

TEST(PropertySweep, TrialsAreReproducible) {
  // The sweep's trial shapes are a pure function of (kRootSeed, index):
  // if this changes, committed failure reproductions rot.
  ou::SplitMix64 seeder(kRootSeed);
  const std::uint64_t s0 = seeder.next();
  const Trial a = draw_trial(s0, 0);
  const Trial b = draw_trial(s0, 0);
  EXPECT_EQ(a.controller, b.controller);
  EXPECT_EQ(a.cores, b.cores);
  EXPECT_EQ(a.sim_seed, b.sim_seed);
  EXPECT_EQ(a.epochs, b.epochs);
}
