// Telemetry subsystem tests: instrument semantics (histogram bin edges),
// the MemorySink ring buffer, serialization escaping (JSONL/CSV), the
// Recorder's sampling policy, and the tier-1 pin that recording never
// changes what a run computes -- RunResults are bit-identical with
// telemetry on or off, at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "sim/controller_registry.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "telemetry/csv_sink.hpp"
#include "telemetry/jsonl_sink.hpp"
#include "telemetry/memory_sink.hpp"
#include "telemetry/metric.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/text.hpp"
#include "workload/workload.hpp"

namespace ot = odrl::telemetry;
namespace os = odrl::sim;
namespace oa = odrl::arch;
namespace ow = odrl::workload;

// ---------------------------------------------------------------- metrics

TEST(Histogram, BinEdgeSemantics) {
  // bin 0 = (-inf, 1), bin 1 = [1, 10), bin 2 = [10, 100), overflow = [100,).
  ot::Histogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.counts().size(), 4u);

  h.observe(0.5);    // bin 0
  h.observe(1.0);    // exactly on an edge -> the bin above it (bin 1)
  h.observe(5.0);    // bin 1
  h.observe(10.0);   // edge -> bin 2
  h.observe(99.9);   // bin 2
  h.observe(100.0);  // edge -> overflow
  h.observe(1e9);    // overflow

  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 2u);
  EXPECT_EQ(h.counts()[3], 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 5.0 + 10.0 + 99.9 + 100.0 + 1e9, 1e-3);
}

TEST(Histogram, RejectsBadEdges) {
  EXPECT_THROW(ot::Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(ot::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(ot::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(ot::Histogram({1.0, std::nan("")}), std::invalid_argument);
}

TEST(Histogram, ExponentialEdgesSpanInclusive) {
  const auto edges = ot::Histogram::exponential_edges(0.1, 1e7, 17);
  ASSERT_EQ(edges.size(), 17u);
  EXPECT_DOUBLE_EQ(edges.front(), 0.1);
  EXPECT_DOUBLE_EQ(edges.back(), 1e7);  // exact endpoint, not accumulated
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GT(edges[i], edges[i - 1]);
  }
  // Geometric spacing: constant ratio between neighbours.
  const double r0 = edges[1] / edges[0];
  for (std::size_t i = 2; i < edges.size(); ++i) {
    EXPECT_NEAR(edges[i] / edges[i - 1], r0, 1e-6);
  }
}

TEST(Recorder, HistogramReuseRequiresMatchingEdges) {
  ot::Recorder rec;
  rec.add_sink(std::make_shared<ot::MemorySink>());
  rec.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(rec.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(rec.histogram("h", {1.0, 3.0}), std::invalid_argument);
}

// ------------------------------------------------------------- ring buffer

TEST(MemorySink, RingKeepsLastCapacityRecords) {
  ot::MemorySink sink(4);
  for (std::uint64_t e = 0; e < 10; ++e) {
    ot::EpochRecord rec;
    rec.epoch = e;
    sink.epoch(rec);
  }
  EXPECT_EQ(sink.epochs_seen(), 10u);
  const auto kept = sink.epochs();
  ASSERT_EQ(kept.size(), 4u);
  // Oldest-first unroll of the last 4: 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(kept[i].epoch, 6u + i);
  }
}

TEST(MemorySink, UnboundedWhenCapacityZero) {
  ot::MemorySink sink;
  for (std::uint64_t e = 0; e < 100; ++e) {
    ot::EpochRecord rec;
    rec.epoch = e;
    sink.epoch(rec);
  }
  ASSERT_EQ(sink.epochs().size(), 100u);
  EXPECT_EQ(sink.epochs().front().epoch, 0u);
  EXPECT_EQ(sink.epochs().back().epoch, 99u);
}

// -------------------------------------------------------------- escaping

TEST(Text, JsonEscape) {
  EXPECT_EQ(ot::json_escape("plain"), "plain");
  EXPECT_EQ(ot::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(ot::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(ot::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(ot::json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Text, FmtDoubleRoundTripsAndNamesNonFinite) {
  EXPECT_EQ(std::stod(ot::fmt_double(0.1)), 0.1);
  EXPECT_EQ(ot::fmt_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(ot::fmt_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(ot::fmt_double(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(JsonlSink, EscapesNamesAndNullsNonFinite) {
  std::ostringstream out;
  ot::Recorder rec;
  rec.add_sink(std::make_shared<ot::JsonlSink>(out));
  rec.begin_run({"weird \"name\"\n", 4, 10, 1e-3, ""});
  rec.gauge("g.nan").set(std::numeric_limits<double>::quiet_NaN());
  rec.end_run();

  const std::string text = out.str();
  EXPECT_NE(text.find("weird \\\"name\\\"\\n"), std::string::npos) << text;
  EXPECT_NE(text.find("\"type\":\"gauge\",\"name\":\"g.nan\",\"value\":null"),
            std::string::npos)
      << text;
  // Every line must be a complete object.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
}

TEST(CsvSink, QuotesFieldsWithCommasAndQuotes) {
  std::ostringstream out;
  ot::Recorder rec;
  rec.add_sink(std::make_shared<ot::CsvSink>(out));
  rec.begin_run({"name,with \"quotes\"", 2, 5, 1e-3, ""});
  rec.counter("c,1").add(3);
  rec.end_run();

  const std::string text = out.str();
  // RFC 4180: the field is quoted, embedded quotes double.
  EXPECT_NE(text.find("\"name,with \"\"quotes\"\"\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"c,1\""), std::string::npos) << text;
}

TEST(Sinks, SessionTagEmittedOnlyWhenSet) {
  // RunInfo::tag is additive: an empty tag produces byte-identical output
  // to a build that predates the field (the multi-chip golden digests and
  // any downstream CSV/JSONL parsers rely on this).
  auto run_once = [](const std::string& tag, bool jsonl) {
    std::ostringstream out;
    ot::Recorder rec;
    if (jsonl) {
      rec.add_sink(std::make_shared<ot::JsonlSink>(out));
    } else {
      rec.add_sink(std::make_shared<ot::CsvSink>(out));
    }
    rec.begin_run({"ctl", 4, 10, 1e-3, tag});
    rec.counter("c").add(1);
    rec.end_run();
    return out.str();
  };

  for (bool jsonl : {false, true}) {
    const std::string untagged = run_once("", jsonl);
    const std::string tagged = run_once("chip03", jsonl);
    EXPECT_EQ(untagged.find("tag"), std::string::npos) << untagged;
    EXPECT_NE(tagged.find(jsonl ? "\"tag\":\"chip03\"" : "tag=chip03"),
              std::string::npos)
        << tagged;
    EXPECT_NE(untagged, tagged);
  }
}

// ------------------------------------------------------------- recorder

TEST(Recorder, InertWithoutSinks) {
  ot::Recorder rec;
  EXPECT_FALSE(rec.active());
  EXPECT_FALSE(rec.wants_cores(0));
  // The record path must be safe to call anyway (the runner guards on
  // active(), but belt and braces).
  rec.record_epoch({});
  rec.end_run();
}

TEST(Recorder, SamplingKeepsEveryKthEpochButAllEvents) {
  ot::RecorderConfig cfg;
  cfg.sample_every = 3;
  ot::Recorder rec(cfg);
  auto sink = std::make_shared<ot::MemorySink>();
  rec.add_sink(sink);
  for (std::uint64_t e = 0; e < 10; ++e) {
    ot::EpochRecord epoch_rec;
    epoch_rec.epoch = e;
    rec.record_epoch(epoch_rec);          // recorder filters unsampled epochs
    rec.record_budget_change({e, 50.0});  // events always pass
  }
  ASSERT_EQ(sink->epochs().size(), 4u);  // epochs 0, 3, 6, 9
  EXPECT_EQ(sink->epochs()[1].epoch, 3u);
  EXPECT_EQ(sink->budget_changes().size(), 10u);
}

TEST(RecorderConfig, RejectsZeroSampling) {
  ot::RecorderConfig cfg;
  cfg.sample_every = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ------------------------------------- telemetry never changes the run

namespace {

os::SimConfig noisy_sim(std::size_t threads) {
  os::SimConfig cfg;
  cfg.sensor_noise_rel = 0.05;
  cfg.seed = 11;
  cfg.threads = threads;
  return cfg;
}

/// One OD-RL closed-loop run; optionally recorded, at a given width.
os::RunResult run_odrl(std::size_t threads, ot::Recorder* recorder) {
  const std::size_t cores = 32;
  const oa::ChipConfig chip = oa::ChipConfig::make(cores, 0.6);
  os::ManyCoreSystem system(
      chip,
      std::make_unique<ow::GeneratedWorkload>(
          ow::GeneratedWorkload::mixed_suite(cores, 5)),
      noisy_sim(threads));
  auto controller = os::make_controller("OD-RL", chip);
  controller->set_threads(threads);
  os::RunConfig cfg;
  cfg.warmup_epochs = 20;
  cfg.epochs = 150;
  cfg.budget_events = {{0, chip.tdp_w() * 0.9}, {60, chip.tdp_w() * 0.5}};
  cfg.recorder = recorder;
  return os::run_closed_loop(system, *controller, cfg);
}

void expect_bit_identical(const os::RunResult& a, const os::RunResult& b) {
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.otb_energy_j, b.otb_energy_j);
  EXPECT_EQ(a.time_over_s, b.time_over_s);
  EXPECT_EQ(a.peak_overshoot_w, b.peak_overshoot_w);
  EXPECT_EQ(a.mean_power_w, b.mean_power_w);
  EXPECT_EQ(a.thermal_violation_epochs, b.thermal_violation_epochs);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t e = 0; e < a.trace.size(); ++e) {
    ASSERT_EQ(a.trace[e].epoch, b.trace[e].epoch) << "epoch " << e;
    ASSERT_EQ(a.trace[e].budget_w, b.trace[e].budget_w) << "epoch " << e;
    ASSERT_EQ(a.trace[e].chip_power_w, b.trace[e].chip_power_w)
        << "epoch " << e;
    ASSERT_EQ(a.trace[e].true_chip_power_w, b.trace[e].true_chip_power_w)
        << "epoch " << e;
    ASSERT_EQ(a.trace[e].total_ips, b.trace[e].total_ips) << "epoch " << e;
    ASSERT_EQ(a.trace[e].max_temp_c, b.trace[e].max_temp_c) << "epoch " << e;
    ASSERT_EQ(a.trace[e].thermal_violations, b.trace[e].thermal_violations)
        << "epoch " << e;
    // decide_s is wall clock: excluded, like decision_time_s above.
  }
}

}  // namespace

TEST(TelemetryDeterminism, RunResultsIdenticalWithTelemetryOnOrOff) {
  const os::RunResult off = run_odrl(1, nullptr);

  ot::RecorderConfig rc;
  rc.per_core = true;
  ot::Recorder rec(rc);
  auto sink = std::make_shared<ot::MemorySink>();
  rec.add_sink(sink);
  const os::RunResult on = run_odrl(1, &rec);

  expect_bit_identical(off, on);
  // And the recording actually happened.
  EXPECT_EQ(sink->epochs().size(), 150u);
  EXPECT_EQ(sink->cores().size(), 150u * 32u);
  EXPECT_FALSE(sink->reallocs().empty());
  EXPECT_EQ(sink->budget_changes().size(), 2u);
  EXPECT_EQ(sink->runs_ended(), 1u);
}

TEST(TelemetryDeterminism, RecordedRunsIdenticalAcrossThreadCounts) {
  ot::Recorder rec1;
  auto sink1 = std::make_shared<ot::MemorySink>();
  rec1.add_sink(sink1);
  const os::RunResult serial = run_odrl(1, &rec1);

  ot::Recorder rec8;
  auto sink8 = std::make_shared<ot::MemorySink>();
  rec8.add_sink(sink8);
  const os::RunResult wide = run_odrl(8, &rec8);

  expect_bit_identical(serial, wide);

  // The sink streams must match too (deterministic emission order): same
  // epoch records, same reallocation events with the same per-core budgets.
  const auto e1 = sink1->epochs();
  const auto e8 = sink8->epochs();
  ASSERT_EQ(e1.size(), e8.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    ASSERT_EQ(e1[i].epoch, e8[i].epoch) << i;
    ASSERT_EQ(e1[i].true_chip_power_w, e8[i].true_chip_power_w) << i;
  }
  const auto r1 = sink1->reallocs();
  const auto r8 = sink8->reallocs();
  ASSERT_EQ(r1.size(), r8.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    const auto& ra = r1[i];
    const auto& rb = r8[i];
    ASSERT_EQ(ra.epoch, rb.epoch) << i;
    ASSERT_EQ(ra.mu, rb.mu) << i;
    ASSERT_EQ(ra.mean_reward, rb.mean_reward) << i;
    ASSERT_EQ(ra.core_budgets, rb.core_budgets) << i;
  }
}

TEST(TelemetryRun, EmitsDecideLatencyHistogramAndRunMetrics) {
  ot::Recorder rec;
  auto sink = std::make_shared<ot::MemorySink>();
  rec.add_sink(sink);
  (void)run_odrl(1, &rec);

  const ot::MetricsSnapshot& snap = sink->last_metrics();
  bool found_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "decide_us") {
      found_hist = true;
      EXPECT_EQ(h.count, 150u);  // one decide() per measured epoch
    }
  }
  EXPECT_TRUE(found_hist);
  bool found_epochs = false;
  for (const auto& c : snap.counters) {
    if (c.name == "run.epochs") {
      found_epochs = true;
      EXPECT_EQ(c.value, 150u);
    }
  }
  EXPECT_TRUE(found_epochs);
}
