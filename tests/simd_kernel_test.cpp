// SIMD-vs-scalar bit-identity for the four vectorized epoch kernels
// (DESIGN.md "Vectorized kernels"): batch power, thermal euler step,
// budget reallocation, and the batched TD update. Every test drives the
// scalar reference and the vectorized variant over identical inputs and
// asserts EXACT (bitwise, EXPECT_EQ on doubles) agreement -- the same
// contract the golden digests and the threading tests pin end to end.
//
// When the build carries no native SIMD (ODRL_SIMD=OFF), the force-scalar
// toggle is a no-op and both sides run the same code; the comparisons
// still hold trivially, so the suite is safe to run in every
// configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "arch/chip_config.hpp"
#include "arch/mesh.hpp"
#include "arch/vf_table.hpp"
#include "core/budget_realloc.hpp"
#include "core/odrl_controller.hpp"
#include "power/batch_power.hpp"
#include "power/power_model.hpp"
#include "rl/agent.hpp"
#include "rl/td_batch.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "thermal/thermal_model.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"
#include "workload/workload.hpp"

namespace oa = odrl::arch;
namespace oc = odrl::core;
namespace opw = odrl::power;
namespace orl = odrl::rl;
namespace os = odrl::sim;
namespace ot = odrl::thermal;
namespace ou = odrl::util;
namespace ow = odrl::workload;

namespace {

/// RAII toggle for the util::set_simd_force_scalar test hook; restores the
/// previous setting even when an assertion throws mid-test.
class ForceScalarGuard {
 public:
  explicit ForceScalarGuard(bool force) : prev_(ou::simd_force_scalar()) {
    ou::set_simd_force_scalar(force);
  }
  ~ForceScalarGuard() { ou::set_simd_force_scalar(prev_); }
  ForceScalarGuard(const ForceScalarGuard&) = delete;
  ForceScalarGuard& operator=(const ForceScalarGuard&) = delete;

 private:
  bool prev_;
};

/// Deterministic per-core parameter variation (no two cores identical, so
/// a lane mixup cannot cancel out).
std::vector<oa::CoreParams> varied_params(std::size_t n) {
  std::vector<oa::CoreParams> per_core(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i % 17) / 16.0;
    per_core[i].c_eff_nf = 1.6 + 0.6 * t;
    per_core[i].leak_scale_w = 0.7 + 0.4 * t;
    per_core[i].leak_t_coeff = 0.015 + 0.01 * t;
    per_core[i].uncore_w = 0.2 + 0.1 * t;
  }
  return per_core;
}

/// Activity pattern mixing interior values with the exact boundaries and
/// the tolerance-clamped just-outside values core_power_at accepts.
/// Checked builds reject ANY excursion (the ODRL_CHECK precedes the
/// tolerance clamp by contract), so the just-outside cases degrade to the
/// exact boundaries when contracts are compiled in.
double activity_at(std::size_t i) {
  const double hi = ou::checks_enabled() ? 1.0 : 1.0 + 0.5e-6;
  const double lo = ou::checks_enabled() ? 0.0 : -0.5e-6;
  switch (i % 6) {
    case 0: return 0.0;
    case 1: return 1.0;
    case 2: return hi;  // inside kActivityTol: clamps to 1.0
    case 3: return lo;  // inside kActivityTol: clamps to 0.0
    case 4: return 0.37 + 0.01 * static_cast<double>(i % 29);
    default: return 0.85;
  }
}

}  // namespace

// ------------------------------------------------------------ batch power

TEST(SimdBatchPower, MatchesScalarPowerModelBitwise) {
  const oa::VfTable table = oa::VfTable::default_table();
  // Odd sizes force remainder tails; 67 > one cache line of lanes.
  for (std::size_t n : {1u, 7u, 13u, 67u}) {
    const std::vector<oa::CoreParams> per_core = varied_params(n);
    const opw::BatchPowerModel batch(per_core, table);
    std::vector<std::size_t> level(n);
    std::vector<ow::PhaseSample> phases(n);
    std::vector<double> temp(n);
    for (std::size_t i = 0; i < n; ++i) {
      level[i] = i % table.size();
      phases[i] = {.base_cpi = 1.0, .mpki = 5.0, .activity = activity_at(i)};
      temp[i] = 45.0 + static_cast<double>(i % 50);
    }

    std::vector<double> out_vec(n, -1.0);
    std::vector<double> out_scalar(n, -1.0);
    batch.core_power_into(0, n, level, phases, temp, out_vec);
    {
      ForceScalarGuard guard(true);
      batch.core_power_into(0, n, level, phases, temp, out_scalar);
    }
    // Reference: the scalar PowerModel, one core at a time.
    for (std::size_t i = 0; i < n; ++i) {
      const opw::PowerModel m(per_core[i]);
      const double ref =
          m.core_power_at(table[level[i]], phases[i].activity, temp[i])
              .total_w();
      EXPECT_EQ(out_vec[i], ref) << "core " << i << " n " << n;
      EXPECT_EQ(out_scalar[i], ref) << "core " << i << " n " << n;
    }
  }
}

TEST(SimdBatchPower, ShardedRangesTouchOnlyTheirSlots) {
  const oa::VfTable table = oa::VfTable::default_table();
  const std::size_t n = 19;
  const std::vector<oa::CoreParams> per_core = varied_params(n);
  const opw::BatchPowerModel batch(per_core, table);
  std::vector<std::size_t> level(n, 2);
  std::vector<ow::PhaseSample> phases(
      n, {.base_cpi = 1.0, .mpki = 5.0, .activity = 0.6});
  std::vector<double> temp(n, 70.0);

  std::vector<double> whole(n);
  batch.core_power_into(0, n, level, phases, temp, whole);

  std::vector<double> sharded(n, -7.0);
  batch.core_power_into(0, 5, level, phases, temp, sharded);
  batch.core_power_into(5, 11, level, phases, temp, sharded);
  batch.core_power_into(11, n, level, phases, temp, sharded);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(sharded[i], whole[i]) << i;

  // A partial fill must leave the out-of-range slots untouched.
  std::vector<double> partial(n, -7.0);
  batch.core_power_into(5, 11, level, phases, temp, partial);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < 5 || i >= 11) {
      EXPECT_EQ(partial[i], -7.0) << i;
    }
  }
}

TEST(SimdBatchPower, ActivityBeyondToleranceThrowsInBothVariants) {
  const oa::VfTable table = oa::VfTable::default_table();
  const std::size_t n = 4;
  const opw::BatchPowerModel batch(varied_params(n), table);
  std::vector<std::size_t> level(n, 1);
  std::vector<double> temp(n, 60.0);
  std::vector<double> out(n);
  std::vector<ow::PhaseSample> phases(
      n, {.base_cpi = 1.0, .mpki = 5.0, .activity = 0.5});
  phases[2].activity = 1.1;  // far outside kActivityTol
  if (ou::checks_enabled()) {
    EXPECT_THROW(batch.core_power_into(0, n, level, phases, temp, out),
                 ou::ContractViolation);
    ForceScalarGuard guard(true);
    EXPECT_THROW(batch.core_power_into(0, n, level, phases, temp, out),
                 ou::ContractViolation);
  } else {
    EXPECT_THROW(batch.core_power_into(0, n, level, phases, temp, out),
                 std::invalid_argument);
    ForceScalarGuard guard(true);
    EXPECT_THROW(batch.core_power_into(0, n, level, phases, temp, out),
                 std::invalid_argument);
  }
}

// ---------------------------------------------------------------- thermal

TEST(SimdThermal, EulerStepMatchesScalarBitwise) {
  for (auto [w, h] : {std::pair<std::size_t, std::size_t>{3, 3},
                      {5, 7},
                      {8, 8}}) {
    ot::ThermalModel vec_model(oa::Mesh(w, h), oa::ThermalParams{});
    ot::ThermalModel sca_model(oa::Mesh(w, h), oa::ThermalParams{});
    const std::size_t n = vec_model.size();
    std::vector<double> power(n);
    for (std::size_t step = 0; step < 50; ++step) {
      for (std::size_t i = 0; i < n; ++i) {
        power[i] = 2.0 + std::sin(static_cast<double>(i + step)) * 1.5;
      }
      vec_model.step(power, 1e-3);
      {
        ForceScalarGuard guard(true);
        sca_model.step(power, 1e-3);
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(vec_model.temperature(i), sca_model.temperature(i))
            << w << "x" << h << " tile " << i << " step " << step;
      }
    }
  }
}

TEST(SimdThermal, SubstepCapThrowsOnAbsurdTimestep) {
  const ot::ThermalModel m(oa::Mesh(2, 2), oa::ThermalParams{});
  const std::vector<double> power(m.size(), 1.0);
  const double too_long =
      m.dt_stable_s() *
      static_cast<double>(ot::ThermalModel::kMaxSubsteps) * 4.0;
  ot::ThermalModel mut = m;
  EXPECT_THROW(mut.step(power, too_long), std::invalid_argument);
  // Just inside the cap must not throw (one coarse but bounded step).
  ot::ThermalModel ok = m;
  EXPECT_NO_THROW(ok.step(power, m.dt_stable_s() * 8.0));
}

TEST(SimdThermal, SteadyStateResultReportsConvergence) {
  const ot::ThermalModel m(oa::Mesh(3, 3), oa::ThermalParams{});
  std::vector<double> power(m.size(), 0.0);
  power[4] = 8.0;
  const ot::SteadyStateResult r = m.steady_state_result(power);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_LT(r.iterations, 10000u);
  // The convenience wrapper must return the same temperatures.
  const std::vector<double> plain = m.steady_state(power);
  ASSERT_EQ(plain.size(), r.temps_c.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], r.temps_c[i]) << i;
  }
}

// ------------------------------------------------------------ reallocation

TEST(SimdRealloc, BothBranchesMatchScalarBitwise) {
  for (std::size_t n : {3u, 13u, 64u, 129u}) {
    std::vector<oc::CoreDemand> demands(n);
    for (std::size_t i = 0; i < n; ++i) {
      demands[i].power_w = 0.5 + 0.13 * static_cast<double>(i % 23);
      demands[i].sensitivity =
          0.05 * static_cast<double>(i % 21) - 0.02;  // strays past [0,1]
      demands[i].can_raise = (i % 3) != 0;
    }
    double total = 0.0;
    for (const oc::CoreDemand& d : demands) total += d.power_w;
    // Surplus branch (budget comfortably above demand) and oversubscribed
    // branch (budget well below demand), both exercised.
    for (double budget : {total * 4.0, total * 0.4}) {
      const std::vector<double> vec =
          oc::reallocate_budget(demands, budget, {});
      ForceScalarGuard guard(true);
      const std::vector<double> sca =
          oc::reallocate_budget(demands, budget, {});
      ASSERT_EQ(vec.size(), sca.size());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(vec[i], sca[i]) << "n " << n << " budget " << budget
                                  << " core " << i;
      }
    }
  }
}

// --------------------------------------------------------- batched TD

namespace {

orl::TdConfig td_config(orl::TdRule rule) {
  orl::TdConfig cfg;
  cfg.rule = rule;
  cfg.gamma = 0.7;
  cfg.q_init = 0.5;
  return cfg;
}

/// Builds m agents and a deterministic batch of transitions, then applies
/// the batch through td_update_batch on one set and through sequential
/// learn() on a twin set; every Q-value and update counter must agree to
/// the last bit.
void check_td_batch(orl::TdRule rule, std::size_t m, bool pass_next_action) {
  const std::size_t n_states = 12;
  const std::size_t n_actions = 4;
  std::vector<orl::TdAgent> batched;
  std::vector<orl::TdAgent> sequential;
  for (std::size_t j = 0; j < m; ++j) {
    batched.emplace_back(n_states, n_actions, td_config(rule));
    sequential.emplace_back(n_states, n_actions, td_config(rule));
  }

  std::vector<std::size_t> ps(m), pa(m), ns(m), na(m);
  std::vector<double> reward(m);
  std::vector<orl::TdAgent*> agents(m);
  for (std::size_t round = 0; round < 9; ++round) {
    for (std::size_t j = 0; j < m; ++j) {
      ps[j] = (j + round) % n_states;
      pa[j] = (j * 7 + round) % n_actions;
      ns[j] = (j + round + 5) % n_states;
      na[j] = (j + 2 * round) % n_actions;
      reward[j] = std::sin(static_cast<double>(j * 31 + round)) * 2.0;
      agents[j] = &batched[j];
    }
    orl::TdBatchSpans batch{
        .agents = agents,
        .prev_state = ps,
        .prev_action = pa,
        .next_state = ns,
        .next_action = pass_next_action
                           ? std::span<const std::size_t>(na)
                           : std::span<const std::size_t>(),
        .reward = reward};
    std::vector<double> scratch(3 * m);
    orl::td_update_batch(batch, scratch);
    for (std::size_t j = 0; j < m; ++j) {
      sequential[j].learn(ps[j], pa[j], reward[j], ns[j],
                          pass_next_action
                              ? std::optional<std::size_t>(na[j])
                              : std::nullopt);
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_EQ(batched[j].updates(), sequential[j].updates()) << "agent " << j;
    for (std::size_t s = 0; s < n_states; ++s) {
      for (std::size_t a = 0; a < n_actions; ++a) {
        ASSERT_EQ(batched[j].table().q(s, a), sequential[j].table().q(s, a))
            << "agent " << j << " q(" << s << "," << a << ")";
      }
    }
  }
}

}  // namespace

TEST(SimdTdBatch, QLearningMatchesSequentialLearnBitwise) {
  check_td_batch(orl::TdRule::kQLearning, 11, /*pass_next_action=*/false);
  ForceScalarGuard guard(true);
  check_td_batch(orl::TdRule::kQLearning, 11, /*pass_next_action=*/false);
}

TEST(SimdTdBatch, SarsaMatchesSequentialLearnBitwise) {
  check_td_batch(orl::TdRule::kSarsa, 13, /*pass_next_action=*/true);
  ForceScalarGuard guard(true);
  check_td_batch(orl::TdRule::kSarsa, 13, /*pass_next_action=*/true);
}

TEST(SimdTdBatch, SarsaWithoutNextActionThrows) {
  orl::TdAgent agent(4, 2, td_config(orl::TdRule::kSarsa));
  orl::TdAgent* agents[] = {&agent};
  const std::size_t ps[] = {0}, pa[] = {0}, ns[] = {1};
  const double reward[] = {1.0};
  orl::TdBatchSpans batch{.agents = agents,
                          .prev_state = ps,
                          .prev_action = pa,
                          .next_state = ns,
                          .next_action = {},
                          .reward = reward};
  std::vector<double> scratch(3);
  EXPECT_THROW(orl::td_update_batch(batch, scratch), std::invalid_argument);
}

TEST(SimdTdBatch, UndersizedScratchThrows) {
  orl::TdAgent agent(4, 2, td_config(orl::TdRule::kQLearning));
  orl::TdAgent* agents[] = {&agent};
  const std::size_t ps[] = {0}, pa[] = {0}, ns[] = {1};
  const double reward[] = {1.0};
  orl::TdBatchSpans batch{.agents = agents,
                          .prev_state = ps,
                          .prev_action = pa,
                          .next_state = ns,
                          .next_action = {},
                          .reward = reward};
  std::vector<double> scratch(2);  // needs 3 per agent
  EXPECT_THROW(orl::td_update_batch(batch, scratch), std::invalid_argument);
}

// ----------------------------------------------- closed loop, end to end

namespace {

os::RunResult closed_loop_run(std::size_t threads) {
  const std::size_t cores = 32;
  const oa::ChipConfig chip = oa::ChipConfig::make(cores, 0.6);
  os::SimConfig sim;
  sim.sensor_noise_rel = 0.05;
  sim.seed = 23;
  sim.threads = threads;
  os::ManyCoreSystem system(
      chip,
      std::make_unique<ow::GeneratedWorkload>(
          ow::GeneratedWorkload::mixed_suite(cores, 5)),
      sim);
  oc::OdrlController controller(chip);
  controller.set_threads(threads);
  os::RunConfig cfg;
  cfg.warmup_epochs = 10;
  cfg.epochs = 80;
  cfg.budget_events = {{0, chip.tdp_w() * 0.9}, {40, chip.tdp_w() * 0.55}};
  return os::run_closed_loop(system, controller, cfg);
}

void expect_same_trace(const os::RunResult& a, const os::RunResult& b) {
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.peak_overshoot_w, b.peak_overshoot_w);
  EXPECT_EQ(a.mean_power_w, b.mean_power_w);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t e = 0; e < a.trace.size(); ++e) {
    ASSERT_EQ(a.trace[e].chip_power_w, b.trace[e].chip_power_w) << e;
    ASSERT_EQ(a.trace[e].total_ips, b.trace[e].total_ips) << e;
    ASSERT_EQ(a.trace[e].max_temp_c, b.trace[e].max_temp_c) << e;
  }
}

}  // namespace

TEST(SimdClosedLoop, ScalarAndVectorRunsAreBitIdenticalAcrossThreads) {
  // The load-bearing end-to-end claim: flipping SIMD on/off changes not a
  // single bit of a full OD-RL closed-loop run, at any thread count, and
  // all six runs agree with each other.
  std::vector<os::RunResult> runs;
  for (std::size_t threads : {1u, 2u, 4u}) {
    runs.push_back(closed_loop_run(threads));
    ForceScalarGuard guard(true);
    runs.push_back(closed_loop_run(threads));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    expect_same_trace(runs[0], runs[i]);
  }
}
