// Lint self-test fixture: one deliberate violation per rule under test.
// tests/lint_selftest.py asserts lint_odrl.py exits 1 on this tree and
// names every expected rule. Never compiled -- .cc keeps it out of the
// clang-format/clang-tidy gates.
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace fixture {

// raw-mutex: std::mutex / lock_guard / condition_variable outside
// src/util/mutex.{hpp,cpp}.
class BadLocking {
 public:
  void poke() {
    std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_one();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
};

// unguarded-capability: mutable non-primitive member, no ODRL_GUARDED_BY,
// no allow marker, in a file that includes thread_annotations.hpp.
class BadGuarding {
 private:
  mutable int cache_ = 0;
};

// nondeterminism: clock type, random_device, time(), rand().
inline unsigned bad_entropy() {
  std::random_device rd;
  const auto t = std::chrono::steady_clock::now();
  (void)t;
  return rd() + static_cast<unsigned>(time(nullptr)) +
         static_cast<unsigned>(rand());
}

// raw-thread: threads outside the task runtime -- direct spawn, the
// std::async side door, and the pthread C API all count.
inline void bad_thread() { std::thread worker([] {}); }
inline void bad_async() { auto f = std::async([] {}); }
inline void bad_pthread(pthread_t* t) {
  pthread_create(t, nullptr, nullptr, nullptr);
}

// std-function-hot-path: type-erasure outside the registration allowlist.
inline std::function<void()> bad_callback;

// A suppression without a reason is itself a finding.
// lint: allow(nondeterminism)
inline const auto bad_naked_marker = std::chrono::steady_clock::now();

}  // namespace fixture
