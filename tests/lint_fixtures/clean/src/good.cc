// Lint self-test fixture: a file every lint_odrl.py rule should PASS.
// Exercises the blessed idioms (annotated Mutex, guarded members,
// reasoned allow markers) so a rule that over-triggers fails the
// lint_selftest ctest case. Never compiled -- .cc keeps it out of the
// clang-format/clang-tidy gates, which only see committed .cpp/.hpp.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace fixture {

class GoodGuarded {
 public:
  int value() const {
    odrl::util::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable odrl::util::Mutex mutex_;          // sync primitive: no guard needed
  mutable int value_ ODRL_GUARDED_BY(mutex_) = 0;
  // lint: allow(unguarded-capability): scratch confined to the owner thread
  mutable int scratch_ = 0;
};

// Observational timing with a reasoned marker passes nondeterminism.
inline double good_timing() {
  // lint: allow(nondeterminism): fixture models telemetry-only timing
  using Clock = std::chrono::steady_clock;
  return Clock::now().time_since_epoch().count() * 0.0;
}

// Strings and comments never trip rules: "std::mutex", `time(`, rand(.
inline const char* kDoc = "std::mutex in a string literal is fine";

// Static member accesses never trip raw-thread, and non-std async
// helpers (my::async, launch_async) do not alias onto std::async.
inline unsigned good_thread_query() {
  return std::thread::hardware_concurrency();
}
inline void launch_async() {}
inline void good_async_name() { launch_async(); }

// Member calls named like banned free functions are fine: the
// lookbehind skips qualified/receiver forms.
struct Sim {
  // lint: allow(nondeterminism): simulated-seconds accessor, not wall time
  double time() const { return 0.0; }
};
inline double good_member_call(const Sim& sim) { return sim.time(); }

}  // namespace fixture
