// Tests for Q-table / policy serialization and warm starting.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "arch/chip_config.hpp"
#include "core/odrl_controller.hpp"
#include "rl/qtable_io.hpp"
#include "sim/system.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

#include "loop_helpers.hpp"

namespace orl = odrl::rl;
using odrl::test::decide;
using odrl::test::step;
namespace oa = odrl::arch;
namespace oc = odrl::core;
namespace os = odrl::sim;
namespace ow = odrl::workload;

TEST(QTableIo, RoundTripPreservesValuesAndVisits) {
  orl::QTable table(6, 3, 0.0);
  odrl::util::Rng rng(3);
  for (std::size_t s = 0; s < 6; ++s) {
    for (std::size_t a = 0; a < 3; ++a) {
      table.set_q(s, a, rng.gaussian(0.0, 2.0));
      table.set_visits(s, a, static_cast<std::uint32_t>(rng.below(100)));
    }
  }
  std::stringstream buffer;
  orl::save_qtable(table, buffer);
  const orl::QTable loaded = orl::load_qtable(buffer);
  ASSERT_EQ(loaded.n_states(), 6u);
  ASSERT_EQ(loaded.n_actions(), 3u);
  for (std::size_t s = 0; s < 6; ++s) {
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_EQ(loaded.q(s, a), table.q(s, a));  // exact round trip
      EXPECT_EQ(loaded.visits(s, a), table.visits(s, a));
    }
  }
}

TEST(QTableIo, RejectsMalformedInput) {
  auto expect_reject = [](const std::string& text) {
    std::stringstream in(text);
    EXPECT_THROW(orl::load_qtable(in), std::runtime_error) << text;
  };
  expect_reject("");
  expect_reject("wrong magic\n");
  expect_reject("# odrl-qtable v1\n0 3\n");
  expect_reject("# odrl-qtable v1\n2 2\nq 1.0 2.0\nv 1\n");     // short v row
  expect_reject("# odrl-qtable v1\n1 2\nx 1.0 2.0\nv 1 1\n");   // bad tag
  expect_reject("# odrl-qtable v1\n1 2\nq 1.0 2.0\nv 1 -5\n");  // negative
  expect_reject("# odrl-qtable v1\n2 2\nq 1.0 2.0\nv 1 1\n");   // missing state
}

TEST(QTableIo, RejectsTruncatedAndCorruptInput) {
  auto expect_reject = [](const std::string& text) {
    std::stringstream in(text);
    EXPECT_THROW(orl::load_qtable(in), std::runtime_error) << text;
  };
  // Truncations at every structural boundary.
  expect_reject("# odrl-qtable v1\n");                       // no dimensions
  expect_reject("# odrl-qtable v1\n2\n");                    // half dimensions
  expect_reject("# odrl-qtable v1\n1 2\n");                  // no rows
  expect_reject("# odrl-qtable v1\n1 2\nq 1.0\n");           // cut mid q row
  expect_reject("# odrl-qtable v1\n1 2\nq 1.0 2.0\n");       // v row missing
  expect_reject("# odrl-qtable v1\n1 2\nq 1.0 2.0\nv\n");    // empty v row
  // Corrupt tokens.
  expect_reject("# odrl-qtable v1\n1 2\nq 1.0 x2\nv 1 1\n");   // garbage q
  expect_reject("# odrl-qtable v1\n1 2\nq 1.0 2.0\nv 1 x\n");  // garbage v
  // Visit count past uint32 range (what a formatting overflow would emit).
  expect_reject("# odrl-qtable v1\n1 2\nq 1.0 2.0\nv 1 4294967296\n");
}

TEST(QTableIo, RejectsNonFiniteQValues) {
  // A NaN/inf Q-value in a policy file would poison every TD bootstrap
  // that touches the row; loading must reject it at the door (the dynamic
  // counterpart is QTable::all_finite on the hot path).
  auto expect_reject = [](const std::string& text) {
    std::stringstream in(text);
    EXPECT_THROW(orl::load_qtable(in), std::runtime_error) << text;
  };
  expect_reject("# odrl-qtable v1\n1 2\nq nan 2.0\nv 1 1\n");
  expect_reject("# odrl-qtable v1\n1 2\nq 1.0 inf\nv 1 1\n");
  expect_reject("# odrl-qtable v1\n1 2\nq -inf 2.0\nv 1 1\n");
}

TEST(QTableIo, SaveSurfacesStreamFailure) {
  // Regression: save_qtable must report a failed stream, not silently
  // produce a truncated policy file.
  orl::QTable table(2, 2, 1.0);
  std::stringstream out;
  out.setstate(std::ios::badbit);
  EXPECT_THROW(orl::save_qtable(table, out), std::runtime_error);
}

TEST(QTableIo, SaveFileSurfacesWriteFailure) {
  // /dev/full opens fine and fails on flush -- exactly the full-disk case
  // the explicit flush-and-check in save_qtable_file exists for.
  orl::QTable table(2, 2, 1.0);
  EXPECT_THROW(orl::save_qtable_file(table, "/dev/full"),
               std::runtime_error);
}

TEST(QTableIo, RoundTripsExtremeMagnitudes) {
  // to_chars shortest form must survive the text round trip exactly even
  // at the edges of the double range (where a fixed-precision printf-style
  // writer would truncate or overflow its buffer).
  orl::QTable table(1, 4, 0.0);
  table.set_q(0, 0, 1.7976931348623157e308);   // DBL_MAX
  table.set_q(0, 1, 3.141592653589793e-100);   // tiny, full mantissa
  table.set_q(0, 2, -2.2250738585072014e-308); // -DBL_MIN
  table.set_q(0, 3, 0.1 + 0.2);                // classic non-representable
  std::stringstream buffer;
  orl::save_qtable(table, buffer);
  const orl::QTable loaded = orl::load_qtable(buffer);
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_EQ(loaded.q(0, a), table.q(0, a)) << "action " << a;
  }
}

TEST(QTableIo, FileRoundTrip) {
  orl::QTable table(2, 2, 0.5);
  table.set_q(1, 1, -3.25);
  const std::string path = testing::TempDir() + "/odrl_qtable_test.txt";
  orl::save_qtable_file(table, path);
  const orl::QTable loaded = orl::load_qtable_file(path);
  EXPECT_EQ(loaded.q(1, 1), -3.25);
  std::remove(path.c_str());
  EXPECT_THROW(orl::load_qtable_file("/nonexistent/q.txt"),
               std::runtime_error);
}

TEST(QTableIo, RestoreTableChecksDimensions) {
  orl::TdConfig cfg;
  orl::TdAgent agent(4, 3, cfg);
  EXPECT_THROW(agent.restore_table(orl::QTable(4, 2)), std::invalid_argument);
  EXPECT_THROW(agent.restore_table(orl::QTable(3, 3)), std::invalid_argument);
  orl::QTable good(4, 3, 1.5);
  agent.restore_table(std::move(good));
  EXPECT_DOUBLE_EQ(agent.table().q(0, 0), 1.5);
}

TEST(PolicyIo, SaveLoadRoundTripAcrossControllers) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   ow::GeneratedWorkload::mixed_suite(4, 2)));
  oc::OdrlController trained(chip);
  auto levels = trained.initial_levels(4);
  for (int e = 0; e < 500; ++e) levels = decide(trained, step(sys, levels));

  std::stringstream buffer;
  trained.save_policy(buffer);

  oc::OdrlController fresh(chip);
  fresh.load_policy(buffer);
  for (std::size_t core = 0; core < 4; ++core) {
    const auto& a = trained.agent(core).table();
    const auto& b = fresh.agent(core).table();
    for (std::size_t s = 0; s < a.n_states(); ++s) {
      for (std::size_t act = 0; act < a.n_actions(); ++act) {
        EXPECT_EQ(a.q(s, act), b.q(s, act));
        EXPECT_EQ(a.visits(s, act), b.visits(s, act));
      }
    }
  }
}

TEST(PolicyIo, LoadRejectsWrongShape) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  oc::OdrlController four(chip);
  std::stringstream buffer;
  four.save_policy(buffer);

  const oa::ChipConfig other_chip = oa::ChipConfig::make(8, 0.6);
  oc::OdrlController eight(other_chip);
  EXPECT_THROW(eight.load_policy(buffer), std::runtime_error);

  std::stringstream junk("junk");
  EXPECT_THROW(four.load_policy(junk), std::runtime_error);
}

TEST(PolicyIo, WarmStartSkipsTheRamp) {
  // Train on a trace, save, warm-start a fresh controller on the same
  // trace: the warm start's *early* throughput must beat the cold start's.
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  ow::GeneratedWorkload gen = ow::GeneratedWorkload::mixed_suite(8, 6);
  const ow::RecordedTrace trace = gen.record(4000);

  std::stringstream policy;
  {
    os::ManyCoreSystem sys(chip,
                           std::make_unique<ow::ReplayWorkload>(trace));
    oc::OdrlController ctl(chip);
    auto levels = ctl.initial_levels(8);
    for (int e = 0; e < 4000; ++e) levels = decide(ctl, step(sys, levels));
    ctl.save_policy(policy);
  }

  auto early_instructions = [&](bool warm) {
    os::ManyCoreSystem sys(chip,
                           std::make_unique<ow::ReplayWorkload>(trace));
    oc::OdrlController ctl(chip);
    if (warm) {
      policy.clear();
      policy.seekg(0);
      ctl.load_policy(policy);
    }
    auto levels = ctl.initial_levels(8);
    double instructions = 0.0;
    for (int e = 0; e < 600; ++e) {
      const auto obs = step(sys, levels);
      levels = decide(ctl, obs);
      for (const auto& core : obs.cores) instructions += core.instructions;
    }
    return instructions;
  };

  const double cold = early_instructions(false);
  const double warm = early_instructions(true);
  EXPECT_GT(warm, cold * 1.02);
}
