// Unit tests for src/arch: V/F tables, mesh geometry, chip configuration and
// the technology power formulas defined on CoreParams.
#include <gtest/gtest.h>

#include "arch/chip_config.hpp"
#include "arch/mesh.hpp"
#include "arch/vf_table.hpp"

namespace oa = odrl::arch;

// ------------------------------------------------------------ VfTable

TEST(VfTable, DefaultTableShape) {
  const oa::VfTable t = oa::VfTable::default_table();
  EXPECT_EQ(t.size(), 8u);
  EXPECT_DOUBLE_EQ(t.min_freq_ghz(), 1.0);
  EXPECT_DOUBLE_EQ(t.max_freq_ghz(), 3.0);
  EXPECT_DOUBLE_EQ(t[0].voltage_v, 0.70);
  EXPECT_DOUBLE_EQ(t[t.max_level()].voltage_v, 1.10);
}

TEST(VfTable, LinearInterpolatesEndpoints) {
  const oa::VfTable t = oa::VfTable::linear(5, 1.0, 2.0, 0.8, 1.0);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t[0].freq_ghz, 1.0);
  EXPECT_DOUBLE_EQ(t[4].freq_ghz, 2.0);
  EXPECT_DOUBLE_EQ(t[2].freq_ghz, 1.5);
  EXPECT_DOUBLE_EQ(t[2].voltage_v, 0.9);
}

TEST(VfTable, StrictMonotonicityEnforced) {
  // Non-increasing frequency.
  EXPECT_THROW(oa::VfTable({{0.8, 2.0}, {0.9, 2.0}}), std::invalid_argument);
  // Non-increasing voltage.
  EXPECT_THROW(oa::VfTable({{0.9, 1.0}, {0.9, 2.0}}), std::invalid_argument);
  // Increasing both: fine.
  EXPECT_NO_THROW(oa::VfTable({{0.8, 1.0}, {0.9, 2.0}}));
}

TEST(VfTable, RejectsDegenerateTables) {
  EXPECT_THROW(oa::VfTable({}), std::invalid_argument);
  EXPECT_THROW(oa::VfTable({{0.9, 1.0}}), std::invalid_argument);
  EXPECT_THROW(oa::VfTable({{-0.1, 1.0}, {0.9, 2.0}}), std::invalid_argument);
  EXPECT_THROW(oa::VfTable::linear(1, 1.0, 2.0, 0.8, 1.0),
               std::invalid_argument);
  EXPECT_THROW(oa::VfTable::linear(4, 2.0, 1.0, 0.8, 1.0),
               std::invalid_argument);
}

TEST(VfTable, ClampLevel) {
  const oa::VfTable t = oa::VfTable::default_table();
  EXPECT_EQ(t.clamp_level(-5), 0u);
  EXPECT_EQ(t.clamp_level(3), 3u);
  EXPECT_EQ(t.clamp_level(100), t.max_level());
}

TEST(VfTable, LevelForFreq) {
  const oa::VfTable t = oa::VfTable::default_table();
  EXPECT_EQ(t.level_for_freq(0.5), 0u);   // below floor -> floor
  EXPECT_EQ(t.level_for_freq(1.0), 0u);
  EXPECT_EQ(t.level_for_freq(3.0), t.max_level());
  EXPECT_EQ(t.level_for_freq(10.0), t.max_level());
  // Between levels 1 (1.286) and 2 (1.571): picks 1.
  EXPECT_EQ(t.level_for_freq(1.5), 1u);
}

TEST(VfTable, AtThrowsOutOfRange) {
  const oa::VfTable t = oa::VfTable::default_table();
  EXPECT_THROW(t.at(8), std::out_of_range);
  EXPECT_NO_THROW(t.at(7));
}

// --------------------------------------------------------------- Mesh

TEST(Mesh, RoundTripCoordIndex) {
  const oa::Mesh m(4, 3);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.index_of(m.coord_of(i)), i);
  }
}

TEST(Mesh, ForCoresIsLargeEnoughAndTight) {
  for (std::size_t n : {1u, 2u, 4u, 7u, 16u, 63u, 64u, 100u, 256u}) {
    const oa::Mesh m = oa::Mesh::for_cores(n);
    EXPECT_GE(m.size(), n) << "n=" << n;
    // Not absurdly oversized: one row's worth of slack at most.
    EXPECT_LT(m.size() - n, m.width()) << "n=" << n;
  }
}

TEST(Mesh, NeighborCounts) {
  const oa::Mesh m(3, 3);
  EXPECT_EQ(m.neighbors(4).size(), 4u);  // center
  EXPECT_EQ(m.neighbors(0).size(), 2u);  // corner
  EXPECT_EQ(m.neighbors(1).size(), 3u);  // edge
}

TEST(Mesh, NeighborsAreSymmetric) {
  const oa::Mesh m(4, 4);
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j : m.neighbors(i)) {
      const auto back = m.neighbors(j);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(Mesh, HopDistance) {
  const oa::Mesh m(4, 4);
  EXPECT_EQ(m.hop_distance(0, 0), 0u);
  EXPECT_EQ(m.hop_distance(0, 3), 3u);
  EXPECT_EQ(m.hop_distance(0, 15), 6u);
  EXPECT_EQ(m.hop_distance(15, 0), 6u);
}

TEST(Mesh, InvalidConstruction) {
  EXPECT_THROW(oa::Mesh(0, 3), std::invalid_argument);
  EXPECT_THROW(oa::Mesh(3, 0), std::invalid_argument);
  EXPECT_THROW(oa::Mesh::for_cores(0), std::invalid_argument);
}

TEST(Mesh, OutOfRangeAccess) {
  const oa::Mesh m(2, 2);
  EXPECT_THROW(m.coord_of(4), std::out_of_range);
  EXPECT_THROW(m.index_of({2, 0}), std::out_of_range);
}

// -------------------------------------------------------- CoreParams

TEST(CoreParams, DynamicPowerScalesWithV2F) {
  const oa::CoreParams p;
  const double base = p.dynamic_power_w(1.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(p.dynamic_power_w(2.0, 1.0, 1.0), 4.0 * base);
  EXPECT_DOUBLE_EQ(p.dynamic_power_w(1.0, 2.0, 1.0), 2.0 * base);
  EXPECT_DOUBLE_EQ(p.dynamic_power_w(1.0, 1.0, 0.5), 0.5 * base);
}

TEST(CoreParams, LeakageGrowsWithVoltageAndTemperature) {
  const oa::CoreParams p;
  EXPECT_GT(p.leakage_power_w(1.1, 85.0), p.leakage_power_w(0.7, 85.0));
  EXPECT_GT(p.leakage_power_w(1.0, 105.0), p.leakage_power_w(1.0, 45.0));
}

TEST(CoreParams, TotalIsSumOfParts) {
  const oa::CoreParams p;
  const double total = p.total_power_w(1.0, 2.0, 0.8, 85.0);
  EXPECT_NEAR(total,
              p.dynamic_power_w(1.0, 2.0, 0.8) + p.leakage_power_w(1.0, 85.0) +
                  p.uncore_w,
              1e-12);
}

TEST(CoreParams, ValidateRejectsBadValues) {
  oa::CoreParams p;
  p.c_eff_nf = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.mem_overlap = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.issue_width = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

TEST(ThermalParams, ValidateRejectsBadValues) {
  oa::ThermalParams t;
  t.c_tile_j_per_c = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = {};
  t.max_junction_c = t.ambient_c;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = {};
  EXPECT_NO_THROW(t.validate());
}

// -------------------------------------------------------- ChipConfig

TEST(ChipConfig, MakeSetsBudgetFraction) {
  const oa::ChipConfig chip = oa::ChipConfig::make(16, 0.6);
  EXPECT_EQ(chip.n_cores(), 16u);
  EXPECT_NEAR(chip.tdp_w(), 0.6 * chip.max_chip_power_w(), 1e-9);
}

TEST(ChipConfig, MaxChipPowerScalesWithCores) {
  const oa::ChipConfig a = oa::ChipConfig::make(16, 0.6);
  const oa::ChipConfig b = oa::ChipConfig::make(32, 0.6);
  EXPECT_NEAR(b.max_chip_power_w(), 2.0 * a.max_chip_power_w(), 1e-9);
}

TEST(ChipConfig, WithTdpKeepsSilicon) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.5);
  const oa::ChipConfig capped = chip.with_tdp(10.0);
  EXPECT_DOUBLE_EQ(capped.tdp_w(), 10.0);
  EXPECT_EQ(capped.n_cores(), chip.n_cores());
  EXPECT_EQ(capped.vf_table(), chip.vf_table());
  EXPECT_THROW(chip.with_tdp(0.0), std::invalid_argument);
}

TEST(ChipConfig, MeshCoversCores) {
  for (std::size_t n : {1u, 4u, 16u, 60u, 256u}) {
    const oa::ChipConfig chip = oa::ChipConfig::make(n, 0.6);
    EXPECT_GE(chip.mesh().size(), n);
  }
}

TEST(ChipConfig, RejectsInvalid) {
  EXPECT_THROW(oa::ChipConfig(0, oa::VfTable::default_table(), 10.0),
               std::invalid_argument);
  EXPECT_THROW(oa::ChipConfig(4, oa::VfTable::default_table(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(oa::ChipConfig::make(4, 0.0), std::invalid_argument);
  EXPECT_THROW(oa::ChipConfig::make(4, 2.0), std::invalid_argument);
}

// Parameterized: worst-case per-core power is monotone in level -- the
// assumption behind translating watts into a safe V/F ceiling.
class LevelMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(LevelMonotonicity, WorstCasePowerIncreasesWithLevel) {
  const double temp = GetParam();
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  double prev = 0.0;
  for (std::size_t l = 0; l < chip.vf_table().size(); ++l) {
    const auto& vf = chip.vf_table()[l];
    const double p =
        chip.core().total_power_w(vf.voltage_v, vf.freq_ghz, 1.0, temp);
    EXPECT_GT(p, prev) << "level " << l << " temp " << temp;
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Temperatures, LevelMonotonicity,
                         ::testing::Values(45.0, 65.0, 85.0, 105.0));
