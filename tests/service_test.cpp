// Loopback unit tests for the control-plane service: wire round-trips,
// frame decoding, the open/step/snapshot/close lifecycle, the structured
// error taxonomy, warm starts from snapshot blobs, and the worker-count
// bit-identity contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "service/tcp.hpp"
#include "service/wire.hpp"
#include "sim/controller_registry.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/recorder.hpp"
#include "workload/workload.hpp"

namespace sv = odrl::service;
namespace os = odrl::sim;
namespace oa = odrl::arch;
namespace ow = odrl::workload;
namespace snap = odrl::snapshot;

namespace {

os::ManyCoreSystem make_system(std::size_t cores, std::uint64_t seed = 1) {
  os::SimConfig sim;
  sim.seed = seed;
  return os::ManyCoreSystem(
      oa::ChipConfig::make(cores, 0.6),
      std::make_unique<ow::GeneratedWorkload>(
          ow::GeneratedWorkload::mixed_suite(cores, seed)),
      sim);
}

sv::ServiceStatus status_of(const sv::Message& reply) {
  const auto* err = std::get_if<sv::ErrorReply>(&reply);
  return err == nullptr ? sv::ServiceStatus::kOk : err->status;
}

/// Sends a raw request message and returns the reply's status (kOk when
/// the reply is not an error).
sv::ServiceStatus call_status(sv::LoopbackClient& client, sv::Message msg) {
  return status_of(client.call(std::move(msg)));
}

sv::StepEpochRequest step_request(std::uint64_t session_id,
                                  std::uint64_t epoch,
                                  const os::EpochResult& obs) {
  sv::StepEpochRequest req;
  req.head.type = sv::MsgType::kStepEpoch;
  req.head.session_id = session_id;
  req.epoch = epoch;
  req.obs = obs;
  return req;
}

// -- Wire layer --

TEST(ServiceWire, FrameRoundTripAndChunkedDecode) {
  const std::string a = "payload-a";
  const std::string b(1000, 'x');
  const std::string stream =
      sv::encode_frame(a) + sv::encode_frame(b) + sv::encode_frame("");

  // Feed the whole stream at once.
  {
    sv::FrameDecoder dec;
    dec.feed(stream);
    std::string out;
    ASSERT_TRUE(dec.next(out));
    EXPECT_EQ(out, a);
    ASSERT_TRUE(dec.next(out));
    EXPECT_EQ(out, b);
    ASSERT_TRUE(dec.next(out));
    EXPECT_EQ(out, "");
    EXPECT_FALSE(dec.next(out));
    EXPECT_EQ(dec.buffered(), 0u);
  }
  // Feed byte by byte: identical frames must fall out.
  {
    sv::FrameDecoder dec;
    std::vector<std::string> got;
    std::string out;
    for (const char c : stream) {
      dec.feed(std::string_view(&c, 1));
      while (dec.next(out)) got.push_back(out);
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], a);
    EXPECT_EQ(got[1], b);
    EXPECT_EQ(got[2], "");
  }
}

TEST(ServiceWire, HostileLengthPrefixThrowsBadFrame) {
  std::string hostile = "\xff\xff\xff\xff";  // ~4 GiB frame
  sv::FrameDecoder dec;
  try {
    dec.feed(hostile);
    FAIL() << "hostile prefix accepted";
  } catch (const sv::ServiceError& e) {
    EXPECT_EQ(e.status(), sv::ServiceStatus::kBadFrame);
  }
  const std::string big(sv::kMaxFrameBytes + 1, 'x');
  EXPECT_THROW((void)sv::encode_frame(big), sv::ServiceError);
}

TEST(ServiceWire, MessageRoundTripsPreserveFields) {
  sv::OpenSessionRequest open;
  open.head.type = sv::MsgType::kOpenSession;
  open.head.seq = 42;
  open.controller = "PID";
  open.cores = 16;
  open.budget_fraction = 0.45;
  open.seed = 99;
  open.tag = "tenant-a";
  open.watchdog = true;
  open.overrides = {{"kp", "0.5"}, {"ki", "0.01"}};
  open.seed_blob = "not-a-real-blob";

  const sv::Message decoded =
      sv::decode_message(sv::encode_message(open));
  const auto* round = std::get_if<sv::OpenSessionRequest>(&decoded);
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->head.seq, 42u);
  EXPECT_EQ(round->controller, "PID");
  EXPECT_EQ(round->cores, 16u);
  EXPECT_DOUBLE_EQ(round->budget_fraction, 0.45);
  EXPECT_EQ(round->seed, 99u);
  EXPECT_EQ(round->tag, "tenant-a");
  EXPECT_TRUE(round->watchdog);
  EXPECT_EQ(round->overrides, open.overrides);
  EXPECT_EQ(round->seed_blob, "not-a-real-blob");

  sv::StepEpochReply step;
  step.head.type = sv::MsgType::kStepReply;
  step.head.seq = 7;
  step.head.session_id = 3;
  step.epoch = 12;
  step.levels = {0, 1, 2, 7};
  step.sanitized = 2;
  step.watchdog_holding = true;
  const sv::Message decoded2 =
      sv::decode_message(sv::encode_message(step));
  const auto* round2 = std::get_if<sv::StepEpochReply>(&decoded2);
  ASSERT_NE(round2, nullptr);
  EXPECT_EQ(round2->levels, step.levels);
  EXPECT_EQ(round2->sanitized, 2u);
  EXPECT_TRUE(round2->watchdog_holding);
}

TEST(ServiceWire, ObservationRoundTripMirrorsMeasuredIntoTrue) {
  os::ManyCoreSystem system = make_system(4);
  os::EpochResult obs;
  std::vector<std::size_t> levels(4, 2);
  system.step_into(levels, obs);

  const sv::Message decoded = sv::decode_message(
      sv::encode_message(step_request(1, 0, obs)));
  const auto* req = std::get_if<sv::StepEpochRequest>(&decoded);
  ASSERT_NE(req, nullptr);
  ASSERT_EQ(req->obs.n_cores(), 4u);
  EXPECT_DOUBLE_EQ(req->obs.chip_power_w, obs.chip_power_w);
  // true_* never crosses the wire: the decoder mirrors the measured
  // columns into them.
  EXPECT_DOUBLE_EQ(req->obs.true_chip_power_w, req->obs.chip_power_w);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(req->obs.cores.true_power_w()[i],
                     req->obs.cores.power_w()[i]);
    EXPECT_EQ(req->obs.cores.level()[i], obs.cores.level()[i]);
  }
}

TEST(ServiceWire, DecodeRejectsHostileCountsAndVersions) {
  // Version bump: rejected as kBadVersion.
  {
    snap::Writer w;
    w.begin_section(sv::kMsgHeaderTag);
    w.u32(sv::kWireVersion + 1);
    w.u8(static_cast<std::uint8_t>(sv::MsgType::kHello));
    w.u64(0);
    w.u64(0);
    w.end_section();
    try {
      (void)sv::decode_message(std::move(w).finish());
      FAIL() << "bad version accepted";
    } catch (const sv::ServiceError& e) {
      EXPECT_EQ(e.status(), sv::ServiceStatus::kBadVersion);
    }
  }
  // Unknown type byte: kUnknownType.
  {
    snap::Writer w;
    w.begin_section(sv::kMsgHeaderTag);
    w.u32(sv::kWireVersion);
    w.u8(200);
    w.u64(0);
    w.u64(0);
    w.end_section();
    try {
      (void)sv::decode_message(std::move(w).finish());
      FAIL() << "unknown type accepted";
    } catch (const sv::ServiceError& e) {
      EXPECT_EQ(e.status(), sv::ServiceStatus::kUnknownType);
    }
  }
  // Hostile element count: an OBSV section claiming 2^32 cores in a
  // 100-byte payload must be rejected before any allocation.
  {
    snap::Writer w;
    w.begin_section(sv::kMsgHeaderTag);
    w.u32(sv::kWireVersion);
    w.u8(static_cast<std::uint8_t>(sv::MsgType::kStepEpoch));
    w.u64(0);
    w.u64(1);
    w.end_section();
    w.begin_section(sv::kObservationTag);
    w.u64(0);  // epoch
    w.u64(0);  // obs.epoch
    for (int i = 0; i < 7; ++i) w.f64(0.0);
    w.u64(0);  // thermal_violations
    w.u64(std::uint64_t{1} << 32);  // hostile core count
    w.end_section();
    try {
      (void)sv::decode_message(std::move(w).finish());
      FAIL() << "hostile count accepted";
    } catch (const sv::ServiceError& e) {
      EXPECT_EQ(e.status(), sv::ServiceStatus::kBadMessage);
    }
  }
  // Plain garbage: the snapshot layer rejects it (bad magic).
  EXPECT_THROW((void)sv::decode_message("garbage bytes"),
               snap::SnapshotError);
}

// -- Server lifecycle --

TEST(ServiceServer, HelloListsControllers) {
  sv::Server server;
  sv::LoopbackClient client(server, "test-client");
  const sv::HelloReply hello = client.hello();
  EXPECT_EQ(hello.server, "odrl-service");
  const auto names = hello.controllers;
  EXPECT_NE(std::find(names.begin(), names.end(), "OD-RL"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "PID"), names.end());
}

TEST(ServiceServer, OpenStepSnapshotCloseLifecycle) {
  sv::Server server;
  sv::LoopbackClient client(server);

  sv::TenantConfig tc;
  tc.controller = "PID";
  tc.cores = 4;
  tc.seed = 3;
  sv::Tenant tenant(client, tc);
  EXPECT_EQ(tenant.levels().size(), 4u);
  EXPECT_EQ(server.session_count(), 1u);

  for (int i = 0; i < 20; ++i) {
    const sv::StepEpochReply& reply = tenant.step();
    ASSERT_EQ(reply.levels.size(), 4u);
    EXPECT_EQ(reply.epoch, static_cast<std::uint64_t>(i));
  }

  const sv::SnapshotReply snap_reply = client.snapshot(tenant.session_id());
  EXPECT_EQ(snap_reply.epoch, 20u);
  EXPECT_FALSE(snap_reply.blob.empty());
  // The blob is a well-formed snapshot frame with SESS + CTRL sections.
  snap::Reader r(snap_reply.blob);
  EXPECT_TRUE(r.has_section(sv::kSessionStateTag));
  EXPECT_TRUE(r.has_section(os::kSnapshotControllerTag));

  const sv::CloseSessionReply closed = tenant.close();
  EXPECT_EQ(closed.epochs, 20u);
  EXPECT_EQ(server.session_count(), 0u);

  const sv::ServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.epochs, 20u);
}

TEST(ServiceServer, StructuredErrors) {
  sv::Server server;
  sv::LoopbackClient client(server);

  os::ManyCoreSystem system = make_system(4);
  os::EpochResult obs;
  std::vector<std::size_t> levels(4, 2);
  system.step_into(levels, obs);

  // Unknown session.
  EXPECT_EQ(call_status(client, step_request(999, 0, obs)),
            sv::ServiceStatus::kUnknownSession);

  sv::OpenSessionRequest open;
  open.controller = "PID";
  open.cores = 4;
  const sv::OpenSessionReply opened = client.open_session(open);
  const std::uint64_t sid = opened.head.session_id;
  ASSERT_NE(sid, 0u);

  // Dimension mismatch: 3-core observation into a 4-core session.
  {
    os::ManyCoreSystem small = make_system(3);
    os::EpochResult obs3;
    std::vector<std::size_t> levels3(3, 2);
    small.step_into(levels3, obs3);
    EXPECT_EQ(call_status(client, step_request(sid, 0, obs3)),
              sv::ServiceStatus::kDimensionMismatch);
  }

  // Out-of-order epoch: the session expects 0 first.
  EXPECT_EQ(call_status(client, step_request(sid, 5, obs)),
            sv::ServiceStatus::kOutOfOrderEpoch);
  EXPECT_EQ(call_status(client, step_request(sid, 0, obs)),
            sv::ServiceStatus::kOk);
  EXPECT_EQ(call_status(client, step_request(sid, 0, obs)),
            sv::ServiceStatus::kOutOfOrderEpoch);

  // Non-finite sensor data: rejected before it reaches the controller.
  {
    os::EpochResult bad = obs;
    bad.chip_power_w = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(call_status(client, step_request(sid, 1, bad)),
              sv::ServiceStatus::kBadValue);
  }
  {
    os::EpochResult bad = obs;
    bad.cores.level()[2] = 999;  // beyond the V/F table
    EXPECT_EQ(call_status(client, step_request(sid, 1, bad)),
              sv::ServiceStatus::kBadValue);
  }

  // Unknown controller and unconsumed override keys.
  {
    sv::OpenSessionRequest bad;
    bad.controller = "NoSuchController";
    bad.cores = 4;
    EXPECT_THROW((void)client.open_session(bad), sv::ServiceError);
  }
  {
    sv::OpenSessionRequest bad;
    bad.controller = "PID";
    bad.cores = 4;
    bad.overrides = {{"no_such_knob", "1"}};
    try {
      (void)client.open_session(bad);
      FAIL() << "unconsumed override accepted";
    } catch (const sv::ServiceError& e) {
      EXPECT_EQ(e.status(), sv::ServiceStatus::kBadValue);
    }
  }
  // Hostile chip shapes.
  {
    sv::OpenSessionRequest bad;
    bad.controller = "PID";
    bad.cores = 0;
    try {
      (void)client.open_session(bad);
      FAIL() << "0-core session accepted";
    } catch (const sv::ServiceError& e) {
      EXPECT_EQ(e.status(), sv::ServiceStatus::kBadValue);
    }
  }

  // A reply type posted as a request.
  {
    sv::StepEpochReply reply;
    reply.head.type = sv::MsgType::kStepReply;
    EXPECT_EQ(call_status(client, reply), sv::ServiceStatus::kBadMessage);
  }

  // Raw garbage straight into handle(): an ErrorReply, not a throw.
  {
    const std::string reply_payload = server.handle("complete garbage");
    const sv::Message reply = sv::decode_message(reply_payload);
    EXPECT_EQ(status_of(reply), sv::ServiceStatus::kBadFrame);
  }

  const sv::ServerStats stats = server.stats();
  EXPECT_GE(stats.errors, 8u);
}

TEST(ServiceServer, SessionLimitAndShutdown) {
  sv::ServerConfig config;
  config.max_sessions = 1;
  sv::Server server(config);
  sv::LoopbackClient client(server);

  sv::OpenSessionRequest open;
  open.controller = "PID";
  open.cores = 2;
  (void)client.open_session(open);
  try {
    (void)client.open_session(open);
    FAIL() << "session limit not enforced";
  } catch (const sv::ServiceError& e) {
    EXPECT_EQ(e.status(), sv::ServiceStatus::kSessionLimit);
  }

  server.begin_shutdown();
  try {
    (void)client.hello();
    FAIL() << "shutdown not enforced";
  } catch (const sv::ServiceError& e) {
    EXPECT_EQ(e.status(), sv::ServiceStatus::kShutdown);
  }
}

TEST(ServiceServer, ShutdownCutIsAtPostTimeNotHandleTime) {
  // The ~Server contract: requests that beat begin_shutdown() are
  // answered normally even if handled later. handle() itself therefore
  // carries no shutdown check -- only payloads posted after the cut are
  // rejected.
  sv::Server server;
  server.begin_shutdown();

  sv::HelloRequest hello;
  hello.head.type = sv::MsgType::kHello;
  hello.head.seq = 7;
  const sv::Message direct =
      sv::decode_message(server.handle(sv::encode_message(hello)));
  const auto* hr = std::get_if<sv::HelloReply>(&direct);
  ASSERT_NE(hr, nullptr) << "direct handle() must bypass the post-time cut";
  EXPECT_EQ(hr->head.seq, 7u);

  // The transport path takes the cut: a post after shutdown is rejected.
  auto conn = server.connect();
  conn->post(sv::encode_message(hello));
  const sv::Message posted = sv::decode_message(conn->take_reply());
  EXPECT_EQ(status_of(posted), sv::ServiceStatus::kShutdown);
}

TEST(ServiceServer, BudgetChangeReachesController) {
  sv::Server server;
  sv::LoopbackClient client(server);
  sv::OpenSessionRequest open;
  open.controller = "PID";
  open.cores = 4;
  const sv::OpenSessionReply opened = client.open_session(open);
  const std::uint64_t sid = opened.head.session_id;

  os::ManyCoreSystem system = make_system(4);
  os::EpochResult obs;
  std::vector<std::size_t> levels = opened.initial_levels;
  system.step_into(levels, obs);
  (void)client.step(sid, 0, obs);

  // Lower the reported budget: the controller sees on_budget_change and
  // its decisions adapt (PID tracks the cap, so levels must not rise).
  system.set_budget_w(opened.budget_w * 0.5);
  system.step_into(levels, obs);
  const sv::StepEpochReply reply = client.step(sid, 1, obs);
  EXPECT_EQ(reply.levels.size(), 4u);
}

// -- Warm starts --

TEST(ServiceServer, SessionSnapshotWarmStartsMatchingSession) {
  sv::Server server;
  sv::LoopbackClient client(server);

  sv::OpenSessionRequest open;
  open.controller = "OD-RL";
  open.cores = 4;
  open.seed = 11;
  const sv::OpenSessionReply s1 = client.open_session(open);
  const std::uint64_t sid1 = s1.head.session_id;

  // Drive session 1 for a while so the controller accumulates state.
  os::ManyCoreSystem system = make_system(4, 11);
  os::EpochResult obs;
  std::vector<std::size_t> levels = s1.initial_levels;
  for (std::uint64_t e = 0; e < 12; ++e) {
    system.step_into(levels, obs);
    levels = client.step(sid1, e, obs).levels;
  }

  const sv::SnapshotReply snap_reply = client.snapshot(sid1);

  // A fresh session seeded from the blob must continue bit-identically
  // with the original when both see the same observation stream.
  sv::OpenSessionRequest open2 = open;
  open2.seed_blob = snap_reply.blob;
  const sv::OpenSessionReply s2 = client.open_session(open2);
  const std::uint64_t sid2 = s2.head.session_id;

  for (std::uint64_t e = 0; e < 8; ++e) {
    system.step_into(levels, obs);
    const auto r1 = client.step(sid1, 12 + e, obs);
    const auto r2 = client.step(sid2, e, obs);
    ASSERT_EQ(r1.levels, r2.levels) << "diverged at epoch " << e;
    levels = r1.levels;
  }

  // Mismatched controller name: rejected as kBadValue.
  sv::OpenSessionRequest bad = open2;
  bad.controller = "PID";
  try {
    (void)client.open_session(bad);
    FAIL() << "mismatched seed blob accepted";
  } catch (const sv::ServiceError& e) {
    EXPECT_EQ(e.status(), sv::ServiceStatus::kBadValue);
  }
}

TEST(ServiceServer, RunSnapshotWarmStartsSession) {
  // A run_closed_loop snapshot (the PR 7 format) carries the same CTRL
  // section; OpenSession accepts it as a warm start directly.
  os::ManyCoreSystem system = make_system(4, 5);
  auto controller = os::make_controller("OD-RL", system.config(),
                                        os::ControllerOverrides{}.set(
                                            "seed", "5"));
  std::string blob;
  os::RunConfig rc;
  rc.epochs = 10;
  rc.snapshot_epoch = 8;
  rc.snapshot_out = &blob;
  rc.keep_traces = false;
  (void)os::run_closed_loop(system, *controller, rc);
  ASSERT_FALSE(blob.empty());

  sv::Server server;
  sv::LoopbackClient client(server);
  sv::OpenSessionRequest open;
  open.controller = "OD-RL";
  open.cores = 4;
  open.seed = 5;
  open.seed_blob = blob;
  const sv::OpenSessionReply reply = client.open_session(open);
  EXPECT_NE(reply.head.session_id, 0u);
  EXPECT_EQ(reply.initial_levels.size(), 4u);
}

// -- Watchdog policy --

TEST(ServiceServer, WatchdogTripsOnSustainedOvershoot) {
  sv::ServerConfig config;
  config.watchdog.violation_epochs = 3;
  config.watchdog.hold_epochs = 5;
  sv::Server server(config);
  sv::LoopbackClient client(server);

  sv::OpenSessionRequest open;
  open.controller = "PID";
  open.cores = 4;
  open.watchdog = true;
  const sv::OpenSessionReply opened = client.open_session(open);
  const std::uint64_t sid = opened.head.session_id;

  // Fabricate observations reporting power way over the budget: after
  // violation_epochs consecutive overshoots every core must fall back to
  // the safe uniform level, regardless of what the controller decides.
  os::ManyCoreSystem system = make_system(4);
  os::EpochResult obs;
  std::vector<std::size_t> levels = opened.initial_levels;
  system.step_into(levels, obs);
  obs.budget_w = opened.budget_w;  // no budget-change event
  obs.chip_power_w = opened.budget_w * 2.0;
  const std::size_t safe =
      os::safe_uniform_level(oa::ChipConfig::make(4, 0.6), obs.budget_w);

  bool held = false;
  std::uint64_t total_fixed = 0;
  for (std::uint64_t e = 0; e < 6; ++e) {
    const sv::StepEpochReply reply = client.step(sid, e, obs);
    total_fixed += reply.sanitized;
    if (reply.watchdog_holding) {
      held = true;
      for (const std::size_t level : reply.levels) EXPECT_EQ(level, safe);
    }
  }
  EXPECT_TRUE(held);
  EXPECT_GT(total_fixed, 0u);
  EXPECT_EQ(server.stats().sanitized, total_fixed);
}

// -- Determinism across worker counts --

TEST(ServiceServer, DecisionsBitIdenticalAcrossWorkerCounts) {
  constexpr std::size_t kTenants = 8;
  constexpr std::uint64_t kEpochs = 25;

  auto run_fleet = [&](std::size_t workers) {
    sv::ServerConfig config;
    config.workers = workers;
    sv::Server server(config);
    std::vector<std::unique_ptr<sv::LoopbackClient>> clients;
    std::vector<std::unique_ptr<sv::Tenant>> tenants;
    for (std::size_t t = 0; t < kTenants; ++t) {
      clients.push_back(std::make_unique<sv::LoopbackClient>(server));
      sv::TenantConfig tc;
      tc.controller = (t % 2 == 0) ? "OD-RL" : "PID";
      tc.cores = 4;
      tc.seed = 100 + t;
      tenants.push_back(std::make_unique<sv::Tenant>(*clients[t], tc));
    }
    // Pipeline: post every tenant's step, then complete in post order --
    // with workers > 1 the drains run concurrently across connections.
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      for (auto& tenant : tenants) tenant->post_step();
      for (auto& tenant : tenants) (void)tenant->complete_step();
    }
    std::vector<std::uint64_t> digests;
    for (auto& tenant : tenants) {
      digests.push_back(tenant->decision_digest());
      (void)tenant->close();
    }
    return digests;
  };

  const auto d1 = run_fleet(1);
  const auto d2 = run_fleet(2);
  const auto d4 = run_fleet(4);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d4);
}

// -- Telemetry export --

TEST(ServiceServer, ExportCountersReachesRecorder) {
  sv::Server server;
  sv::LoopbackClient client(server);
  sv::TenantConfig tc;
  tc.controller = "PID";
  tc.cores = 2;
  tc.tag = "tenant-x";
  sv::Tenant tenant(client, tc);
  for (int i = 0; i < 5; ++i) (void)tenant.step();

  odrl::telemetry::Recorder recorder;
  server.export_counters(recorder);
  EXPECT_EQ(recorder.counter("service.epochs").value(), 5u);
  EXPECT_EQ(recorder.counter("service.sessions_opened").value(), 1u);
  EXPECT_EQ(recorder.counter("service.session.tenant-x.epochs").value(), 5u);
}

// -- TCP adapter --

TEST(ServiceTcp, HelloOverLocalhostSocket) {
  sv::Server server;
  std::unique_ptr<sv::TcpServer> tcp;
  try {
    tcp = std::make_unique<sv::TcpServer>(server, 0);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "no loopback sockets in this environment: " << e.what();
  }
  ASSERT_NE(tcp->port(), 0);

  sv::TcpClient client(tcp->port());
  sv::HelloRequest hello;
  hello.head.type = sv::MsgType::kHello;
  hello.head.seq = 1;
  hello.client = "tcp-test";
  client.post(sv::encode_message(hello));

  // Pump the adapter until it has moved the request in AND the reply out
  // (two frames); the width-1 server handles inline during post(). A few
  // extra pumps flush any residual bytes before the blocking read.
  std::size_t moved = 0;
  for (int i = 0; i < 1000 && moved < 2; ++i) moved += tcp->poll_once(10);
  ASSERT_GE(moved, 2u) << "reply never crossed the adapter";
  for (int i = 0; i < 4; ++i) (void)tcp->poll_once(0);

  const std::string payload = client.take_reply();
  const sv::Message reply = sv::decode_message(payload);
  const auto* hr = std::get_if<sv::HelloReply>(&reply);
  ASSERT_NE(hr, nullptr);
  EXPECT_EQ(hr->head.seq, 1u);
  EXPECT_EQ(hr->server, "odrl-service");
}

TEST(ServiceTcp, AcceptWhilePeersActiveServesBothIndependently) {
  // Regression: poll_once once indexed the poll set with the *post*-
  // accept peer count, reading past fds' end for every freshly accepted
  // peer. Connecting a second client while the first is mid-conversation
  // exercises exactly that accept-with-existing-peers path (ASan guards
  // the indexing).
  sv::Server server;
  std::unique_ptr<sv::TcpServer> tcp;
  try {
    tcp = std::make_unique<sv::TcpServer>(server, 0);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "no loopback sockets in this environment: " << e.what();
  }

  sv::TcpClient first(tcp->port());
  sv::HelloRequest hello;
  hello.head.type = sv::MsgType::kHello;
  hello.head.seq = 11;
  first.post(sv::encode_message(hello));
  std::size_t moved = 0;
  for (int i = 0; i < 1000 && moved < 2; ++i) moved += tcp->poll_once(10);
  ASSERT_GE(moved, 2u);

  // Second peer arrives while the first is connected: the accept and the
  // first peer's I/O happen inside the same pump iterations.
  sv::TcpClient second(tcp->port());
  hello.head.seq = 22;
  second.post(sv::encode_message(hello));
  moved = 0;
  for (int i = 0; i < 1000 && moved < 2; ++i) moved += tcp->poll_once(10);
  ASSERT_GE(moved, 2u);
  for (int i = 0; i < 4; ++i) (void)tcp->poll_once(0);
  EXPECT_EQ(tcp->peer_count(), 2u);

  const auto expect_hello_seq = [](sv::TcpClient& c, std::uint64_t seq) {
    const sv::Message reply = sv::decode_message(c.take_reply());
    const auto* hr = std::get_if<sv::HelloReply>(&reply);
    ASSERT_NE(hr, nullptr);
    EXPECT_EQ(hr->head.seq, seq);
  };
  expect_hello_seq(first, 11);
  expect_hello_seq(second, 22);
}

}  // namespace
