// Controller registry tests: name-keyed construction of every built-in,
// loud failure on unknown names and unconsumed/garbage override keys,
// override application (checked through the controllers' own config
// accessors), typed override parsing, and open registration.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "core/odrl_controller.hpp"
#include "rl/agent.hpp"
#include "sim/controller_registry.hpp"

namespace oa = odrl::arch;
namespace oc = odrl::core;
namespace os = odrl::sim;

namespace {

const oa::ChipConfig& test_chip() {
  static const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  return chip;
}

/// Expects fn() to throw std::invalid_argument whose message contains
/// `needle`, and returns the message for further checks.
template <typename Fn>
std::string expect_invalid_argument(Fn fn, const std::string& needle) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos) << what;
    return what;
  }
  ADD_FAILURE() << "expected std::invalid_argument containing \"" << needle
                << "\"";
  return {};
}

}  // namespace

TEST(Registry, AllBuiltinsRegistered) {
  const auto names = os::registered_controllers();
  for (const char* expected :
       {"OD-RL", "PID", "Greedy", "MaxBIPS", "Static"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, MakesEveryBuiltinByName) {
  for (const std::string& name : os::registered_controllers()) {
    auto controller = os::make_controller(name, test_chip());
    ASSERT_NE(controller, nullptr) << name;
    // Registered name and self-reported name agree for the defaults.
    EXPECT_EQ(controller->name(), name);
    // And the controller is usable: initial levels for every core.
    EXPECT_EQ(controller->initial_levels(test_chip().n_cores()).size(),
              test_chip().n_cores());
  }
}

TEST(Registry, UnknownNameThrowsAndListsRegistered) {
  const std::string what = expect_invalid_argument(
      [] { os::make_controller("NoSuchController", test_chip()); },
      "NoSuchController");
  // The error names what *is* available.
  EXPECT_NE(what.find("OD-RL"), std::string::npos) << what;
  EXPECT_NE(what.find("Static"), std::string::npos) << what;
}

TEST(Registry, UnconsumedOverrideKeyThrowsNamingKeyAndController) {
  const std::string what = expect_invalid_argument(
      [] {
        os::make_controller("PID", test_chip(), {{"not_a_knob", "1"}});
      },
      "not_a_knob");
  EXPECT_NE(what.find("PID"), std::string::npos) << what;
}

TEST(Registry, OdrlOverridesReachTheConfig) {
  auto controller = os::make_controller("OD-RL", test_chip(),
                                        {{"realloc_period", "25"},
                                         {"lambda", "9.5"},
                                         {"rule", "sarsa"},
                                         {"action_mode", "absolute"},
                                         {"headroom_bins", "6"}});
  const auto& odrl = dynamic_cast<const oc::OdrlController&>(*controller);
  EXPECT_EQ(odrl.config().realloc_period, 25u);
  EXPECT_DOUBLE_EQ(odrl.config().lambda, 9.5);
  EXPECT_EQ(odrl.config().td.rule, odrl::rl::TdRule::kSarsa);
  EXPECT_EQ(odrl.config().action_mode, oc::ActionMode::kAbsolute);
  EXPECT_EQ(odrl.config().headroom_bins, 6u);
}

TEST(Registry, MaxBipsSolverOverrideSelectsExact) {
  auto controller =
      os::make_controller("MaxBIPS", test_chip(), {{"solver", "exact"}});
  EXPECT_EQ(controller->name(), "MaxBIPS-exact");
  EXPECT_THROW(
      os::make_controller("MaxBIPS", test_chip(), {{"solver", "simplex"}}),
      std::invalid_argument);
}

TEST(Registry, EnumOverridesRejectGarbageValues) {
  EXPECT_THROW(
      os::make_controller("OD-RL", test_chip(), {{"rule", "expected-sarsa"}}),
      std::invalid_argument);
  EXPECT_THROW(os::make_controller("OD-RL", test_chip(),
                                   {{"action_mode", "sideways"}}),
               std::invalid_argument);
}

TEST(Registry, NumericOverridesRejectGarbageValues) {
  expect_invalid_argument(
      [] {
        os::make_controller("PID", test_chip(), {{"kp", "fast"}});
      },
      "kp");
  EXPECT_THROW(
      os::make_controller("OD-RL", test_chip(), {{"realloc_period", "-3"}}),
      std::invalid_argument);
  EXPECT_THROW(
      os::make_controller("OD-RL", test_chip(), {{"lambda", "1.5x"}}),
      std::invalid_argument);
}

TEST(Registry, OverridesAreReusableAcrossMakes) {
  // make() tracks consumption on a private copy, so one overrides object
  // can configure several controllers.
  const os::ControllerOverrides ov{{"lambda", "7.0"}};
  for (int i = 0; i < 2; ++i) {
    auto controller = os::make_controller("OD-RL", test_chip(), ov);
    const auto& odrl = dynamic_cast<const oc::OdrlController&>(*controller);
    EXPECT_DOUBLE_EQ(odrl.config().lambda, 7.0);
  }
}

TEST(ControllerOverrides, TypedGettersParseAndTrackConsumption) {
  os::ControllerOverrides ov{
      {"d", "2.5"}, {"n", "42"}, {"b1", "on"}, {"b2", "false"}, {"s", "hi"}};
  EXPECT_EQ(ov.get_double("d", 0.0), 2.5);
  EXPECT_EQ(ov.get_size("n", 0), 42u);
  EXPECT_TRUE(ov.get_bool("b1", false));
  EXPECT_FALSE(ov.get_bool("b2", true));
  // Absent key: fallback, and the read still counts as consumption-safe.
  EXPECT_EQ(ov.get_string("missing", "dflt"), "dflt");

  const auto stray = ov.unconsumed();
  ASSERT_EQ(stray.size(), 1u);
  EXPECT_EQ(stray[0], "s");
  expect_invalid_argument([&] { ov.throw_if_unconsumed("Test"); }, "s");

  EXPECT_EQ(ov.get_string("s", ""), "hi");
  EXPECT_TRUE(ov.unconsumed().empty());
  EXPECT_NO_THROW(ov.throw_if_unconsumed("Test"));
}

TEST(ControllerOverrides, BoolParsingAcceptsCommonSpellings) {
  os::ControllerOverrides ov;
  ov.set("a", "true").set("b", "1").set("c", "off").set("d", "0");
  EXPECT_TRUE(ov.get_bool("a", false));
  EXPECT_TRUE(ov.get_bool("b", false));
  EXPECT_FALSE(ov.get_bool("c", true));
  EXPECT_FALSE(ov.get_bool("d", true));
  ov.set("e", "maybe");
  EXPECT_THROW(ov.get_bool("e", false), std::invalid_argument);
}

namespace {

/// Minimal controller for open-registration tests.
class FixedLevelController final : public os::Controller {
 public:
  explicit FixedLevelController(std::size_t level) : level_(level) {}
  std::string name() const override { return "FixedLevel"; }
  std::vector<std::size_t> initial_levels(std::size_t n_cores) override {
    return std::vector<std::size_t>(n_cores, level_);
  }
  void decide_into(const os::EpochResult& obs,
                   std::span<std::size_t> out) override {
    (void)obs;
    std::fill(out.begin(), out.end(), level_);
  }

 private:
  std::size_t level_;
};

// Downstream code registers controllers exactly like the built-ins do: a
// file-scope registrar next to the implementation.
const os::ControllerRegistrar fixed_level_registrar{
    "FixedLevel", [](const oa::ChipConfig&, const os::ControllerOverrides& ov) {
      return std::make_unique<FixedLevelController>(ov.get_size("level", 0));
    }};

}  // namespace

TEST(Registry, OpenRegistrationWorksLikeBuiltins) {
  auto controller =
      os::make_controller("FixedLevel", test_chip(), {{"level", "2"}});
  EXPECT_EQ(controller->name(), "FixedLevel");
  EXPECT_EQ(controller->initial_levels(4),
            (std::vector<std::size_t>{2, 2, 2, 2}));
  const auto names = os::registered_controllers();
  EXPECT_NE(std::find(names.begin(), names.end(), "FixedLevel"), names.end());
}

TEST(Registry, DuplicateRegistrationThrows) {
  // Built-ins are linked and registered by the first registry call above;
  // re-adding any of their names must fail loudly.
  (void)os::registered_controllers();
  EXPECT_THROW(os::ControllerRegistry::instance().add(
                   "PID",
                   [](const oa::ChipConfig&, const os::ControllerOverrides&)
                       -> std::unique_ptr<os::Controller> { return nullptr; }),
               std::invalid_argument);
}
