// Unit tests for the versioned snapshot substrate: Writer/Reader framing,
// the corruption matrix (every structural defect maps to its documented
// SnapshotStatus), and the state_io helpers built on top.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace osn = odrl::snapshot;
namespace ou = odrl::util;

namespace {

constexpr std::uint32_t kTagA = osn::section_tag("AAAA");
constexpr std::uint32_t kTagB = osn::section_tag("BBBB");

std::string two_section_blob() {
  osn::Writer w;
  w.begin_section(kTagA);
  w.u64(42);
  w.f64(3.25);
  w.str("hello");
  w.end_section();
  w.begin_section(kTagB);
  w.u8(7);
  w.u32(0xdeadbeef);
  w.end_section();
  return std::move(w).finish();
}

osn::SnapshotStatus parse_status(const std::string& blob) {
  try {
    osn::Reader r(blob);
    return osn::SnapshotStatus::kOk;
  } catch (const osn::SnapshotError& e) {
    return e.status();
  }
}

}  // namespace

TEST(SnapshotWriter, RoundTripsEveryPrimitive) {
  const std::string blob = two_section_blob();
  osn::Reader r(blob);

  r.open_section(kTagA);
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  r.expect_section_end();

  r.open_section(kTagB);
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  r.expect_section_end();
}

TEST(SnapshotWriter, F64IsBitExact) {
  // Including values decimal text formats mangle: -0.0, denormals, the
  // extremes.
  const double values[] = {-0.0, 0.0, std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(), -1.0 / 3.0};
  osn::Writer w;
  w.begin_section(kTagA);
  for (double v : values) w.f64(v);
  const std::string blob = [&] {
    w.end_section();
    return std::move(w).finish();
  }();
  osn::Reader r(blob);
  r.open_section(kTagA);
  for (double v : values) {
    const double got = r.f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(SnapshotWriter, SectionsCanReopenInAnyOrder) {
  const std::string blob = two_section_blob();
  osn::Reader r(blob);
  r.open_section(kTagB);
  EXPECT_EQ(r.u8(), 7u);
  r.open_section(kTagA);
  EXPECT_EQ(r.u64(), 42u);
  r.open_section(kTagB);  // reopen rewinds to the section start
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_TRUE(r.has_section(kTagA));
  EXPECT_FALSE(r.has_section(osn::section_tag("NOPE")));
}

TEST(SnapshotWriter, MisuseThrowsLogicError) {
  osn::Writer w;
  EXPECT_THROW(w.u64(1), std::logic_error);  // write outside section
  w.begin_section(kTagA);
  EXPECT_THROW(w.begin_section(kTagB), std::logic_error);  // nesting
  w.end_section();
  EXPECT_THROW(w.begin_section(kTagA), std::logic_error);  // duplicate tag
  EXPECT_THROW(w.begin_section(0), std::logic_error);      // end marker tag
}

// -- Corruption matrix ----------------------------------------------------

TEST(SnapshotCorruption, BadMagic) {
  std::string blob = two_section_blob();
  blob[0] = 'X';
  EXPECT_EQ(parse_status(blob), osn::SnapshotStatus::kBadMagic);
  EXPECT_EQ(parse_status(""), osn::SnapshotStatus::kBadMagic);
  EXPECT_EQ(parse_status("ODRL"), osn::SnapshotStatus::kBadMagic);
}

TEST(SnapshotCorruption, BadVersion) {
  std::string blob = two_section_blob();
  blob[8] = static_cast<char>(0x7f);  // version LSB
  EXPECT_EQ(parse_status(blob), osn::SnapshotStatus::kBadVersion);
}

TEST(SnapshotCorruption, TruncationAtEveryBoundary) {
  const std::string blob = two_section_blob();
  // Chopping anywhere after the version and before the full trailer must
  // read as truncated or checksum-damaged -- never parse, never crash.
  for (std::size_t n = 12; n < blob.size(); ++n) {
    const osn::SnapshotStatus st = parse_status(blob.substr(0, n));
    EXPECT_TRUE(st == osn::SnapshotStatus::kTruncated ||
                st == osn::SnapshotStatus::kChecksumMismatch)
        << "prefix length " << n << " parsed with status "
        << static_cast<int>(st);
  }
}

TEST(SnapshotCorruption, ChecksumCatchesEveryByteFlip) {
  const std::string blob = two_section_blob();
  // Flip each payload/header byte (past magic+version, before trailer):
  // the checksum must catch all of them (a length-field flip may read as
  // truncation instead -- also a rejection).
  for (std::size_t i = 12; i < blob.size() - 12; ++i) {
    std::string bad = blob;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    const osn::SnapshotStatus st = parse_status(bad);
    EXPECT_NE(st, osn::SnapshotStatus::kOk) << "byte " << i;
  }
}

TEST(SnapshotCorruption, TrailingBytesRejected) {
  // Bytes after the sealed trailer make the frame structurally unsound.
  EXPECT_EQ(parse_status(two_section_blob() + "x"),
            osn::SnapshotStatus::kBadSection);
}

TEST(SnapshotCorruption, MissingSectionIsBadSection) {
  const std::string blob = two_section_blob();
  osn::Reader r(blob);
  try {
    r.open_section(osn::section_tag("NOPE"));
    FAIL() << "opened a section that does not exist";
  } catch (const osn::SnapshotError& e) {
    EXPECT_EQ(e.status(), osn::SnapshotStatus::kBadSection);
  }
}

TEST(SnapshotCorruption, ReadPastSectionEndIsTruncated) {
  const std::string blob = two_section_blob();
  osn::Reader r(blob);
  r.open_section(kTagB);
  (void)r.u8();
  (void)r.u32();
  try {
    (void)r.u64();  // section B holds exactly 5 bytes
    FAIL() << "read past the section end";
  } catch (const osn::SnapshotError& e) {
    EXPECT_EQ(e.status(), osn::SnapshotStatus::kTruncated);
  }
}

TEST(SnapshotCorruption, UnconsumedBytesFailExpectSectionEnd) {
  const std::string blob = two_section_blob();
  osn::Reader r(blob);
  r.open_section(kTagA);
  (void)r.u64();
  try {
    r.expect_section_end();
    FAIL() << "accepted trailing section bytes";
  } catch (const osn::SnapshotError& e) {
    EXPECT_EQ(e.status(), osn::SnapshotStatus::kBadSection);
  }
}

TEST(SnapshotCorruption, StatusCarriesThroughTheException) {
  // The structured-error contract the CLI and fuzz harness rely on: the
  // status enum survives the throw, and the message is human-readable.
  try {
    osn::Reader r("garbage");
    FAIL();
  } catch (const osn::SnapshotError& e) {
    EXPECT_EQ(e.status(), osn::SnapshotStatus::kBadMagic);
    EXPECT_NE(std::string(e.what()).find("ODRLSNAP"), std::string::npos);
  }
}

// -- state_io helpers -----------------------------------------------------

TEST(StateIo, RngRoundTripContinuesTheStream) {
  ou::Rng rng(1234);
  for (int i = 0; i < 101; ++i) (void)rng.gaussian();  // odd: cache primed

  osn::Writer w;
  w.begin_section(kTagA);
  osn::save_rng(w, rng);
  w.end_section();
  const std::string blob = std::move(w).finish();

  ou::Rng restored(1);  // wrong seed on purpose: load must overwrite all
  osn::Reader r(blob);
  r.open_section(kTagA);
  osn::load_rng(r, restored);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.next(), restored.next());
    EXPECT_EQ(rng.gaussian(), restored.gaussian());
  }
}

TEST(StateIo, EmaRoundTripPreservesPrimedState) {
  ou::Ema fresh(0.125);
  ou::Ema primed(0.125);
  primed.update(10.0);
  primed.update(12.0);

  for (const ou::Ema& src : {fresh, primed}) {
    osn::Writer w;
    w.begin_section(kTagA);
    osn::save_ema(w, src);
    w.end_section();
    const std::string blob = std::move(w).finish();

    ou::Ema dst(0.125);
    dst.update(99.0);  // dirty on purpose
    osn::Reader r(blob);
    r.open_section(kTagA);
    osn::load_ema(r, dst);
    EXPECT_EQ(dst.primed(), src.primed());
    if (src.primed()) EXPECT_EQ(dst.value(), src.value());
    // Both must continue identically from here.
    ou::Ema cont = src;
    cont.update(5.0);
    dst.update(5.0);
    EXPECT_EQ(dst.value(), cont.value());
  }
}

TEST(StateIo, RejectsPoisonedValues) {
  // A primed EMA carrying NaN is a poisoned snapshot, not a valid state.
  osn::Writer w;
  w.begin_section(kTagA);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.u8(1);  // primed
  w.end_section();
  const std::string blob = std::move(w).finish();
  osn::Reader r(blob);
  r.open_section(kTagA);
  ou::Ema ema(0.5);
  try {
    osn::load_ema(r, ema);
    FAIL() << "accepted a primed NaN EMA";
  } catch (const osn::SnapshotError& e) {
    EXPECT_EQ(e.status(), osn::SnapshotStatus::kNonFinite);
  }
}

TEST(StateIo, BoolFlagRejectsOutOfRange) {
  osn::Writer w;
  w.begin_section(kTagA);
  w.u8(2);  // neither 0 nor 1
  w.end_section();
  const std::string blob = std::move(w).finish();
  osn::Reader r(blob);
  r.open_section(kTagA);
  try {
    (void)osn::load_bool(r, "flag");
    FAIL() << "accepted a bool flag of 2";
  } catch (const osn::SnapshotError& e) {
    EXPECT_EQ(e.status(), osn::SnapshotStatus::kBadValue);
  }
}
