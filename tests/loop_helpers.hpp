// Allocating convenience wrappers over the buffer-reuse hot-path API, for
// tests whose loops are about behaviour, not allocation discipline. The
// production surface is step_into()/decide_into() (see sim/system.hpp and
// sim/controller.hpp); these helpers keep test bodies terse without
// reaching for the deprecated legacy bridges.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/controller.hpp"
#include "sim/observation.hpp"
#include "sim/system.hpp"

namespace odrl::test {

/// One epoch of `sys` at `levels`, returning a fresh observation.
inline sim::EpochResult step(sim::ManyCoreSystem& sys,
                             std::span<const std::size_t> levels) {
  sim::EpochResult out;
  sys.step_into(levels, out);
  return out;
}

/// One decision of `ctl` on `obs`, returning a fresh level vector.
inline std::vector<std::size_t> decide(sim::Controller& ctl,
                                       const sim::EpochResult& obs) {
  std::vector<std::size_t> out(obs.n_cores());
  ctl.decide_into(obs, out);
  return out;
}

}  // namespace odrl::test
