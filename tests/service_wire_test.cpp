// Golden wire-format suite: one canonical message per wire type (fields
// all pinned to literals -- no simulator dependence, so the bytes are
// identical on every platform) is encoded and reduced to an FNV-1a-64
// digest that must match the committed table in service_wire_digests.inc.
// A digest moving means the wire format changed: that requires a
// kWireVersion bump and a deliberate regeneration, never a silent drift.
//
// When the format legitimately changes, regenerate the table:
//
//   python3 tools/regen_goldens.py
//
// which reruns this test with ODRL_GOLDEN_PRINT=1 and rewrites
// tests/service_wire_digests.inc from its WIREGOLDEN output lines.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/wire.hpp"
#include "sim/observation.hpp"
#include "snapshot/snapshot.hpp"

namespace sv = odrl::service;
namespace snap = odrl::snapshot;

namespace {

struct WireGoldenCase {
  const char* name;
  std::size_t size;       ///< encoded byte count
  std::uint64_t digest;   ///< fnv1a64 over the encoded bytes
};

#include "service_wire_digests.inc"

sv::MsgHeader head(sv::MsgType type, std::uint64_t seq,
                   std::uint64_t session) {
  sv::MsgHeader h;
  h.type = type;
  h.seq = seq;
  h.session_id = session;
  return h;
}

/// A fully literal observation: every column value exactly representable,
/// so the encoded bytes cannot wobble across compilers.
odrl::sim::EpochResult canonical_obs() {
  odrl::sim::EpochResult obs;
  obs.cores.resize(3);
  obs.epoch = 41;
  obs.epoch_s = 0.001;
  obs.budget_w = 48.5;
  obs.chip_power_w = 45.25;
  obs.true_chip_power_w = 45.25;
  obs.total_ips = 6.5e9;
  obs.max_temp_c = 71.5;
  obs.thermal_violations = 1;
  obs.mem_latency_mult = 1.25;
  obs.dram_utilization = 0.5;
  for (std::size_t i = 0; i < 3; ++i) {
    obs.cores.level()[i] = i + 1;
    obs.cores.ips()[i] = 2.0e9 + static_cast<double>(i) * 0.25e9;
    obs.cores.instructions()[i] = 1.0e6 * static_cast<double>(i + 1);
    obs.cores.power_w()[i] = 15.0 + static_cast<double>(i) * 0.125;
    obs.cores.true_power_w()[i] = 15.0 + static_cast<double>(i) * 0.125;
    obs.cores.mem_stall_frac()[i] = 0.25 * static_cast<double>(i);
    obs.cores.temp_c()[i] = 65.0 + static_cast<double>(i);
    obs.cores.online()[i] = i == 2 ? 0 : 1;
  }
  return obs;
}

/// The canonical frame per message type. Every field pinned; adding a
/// message type here requires a row in the committed digest table (the
/// coverage test below fails otherwise).
std::vector<std::pair<std::string, std::string>> canonical_frames() {
  std::vector<std::pair<std::string, std::string>> out;

  sv::HelloRequest hello;
  hello.head = head(sv::MsgType::kHello, 7, 0);
  hello.client = "golden-client";
  out.emplace_back("hello_request", sv::encode_message(hello));

  sv::HelloReply hello_reply;
  hello_reply.head = head(sv::MsgType::kHelloReply, 7, 0);
  hello_reply.server = "golden-server";
  hello_reply.controllers = {"Greedy", "OD-RL", "PID", "Static"};
  out.emplace_back("hello_reply", sv::encode_message(hello_reply));

  sv::OpenSessionRequest open;
  open.head = head(sv::MsgType::kOpenSession, 8, 0);
  open.controller = "OD-RL";
  open.cores = 16;
  open.budget_fraction = 0.5;
  open.seed = 99;
  open.tag = "golden-tenant";
  open.watchdog = true;
  open.overrides = {{"alpha", "0.125"}, {"epsilon", "0.0625"}};
  open.seed_blob = "opaque warm-start bytes";
  out.emplace_back("open_request", sv::encode_message(open));

  sv::OpenSessionReply open_reply;
  open_reply.head = head(sv::MsgType::kOpenReply, 8, 3);
  open_reply.budget_w = 64.0;
  open_reply.initial_levels = {4, 4, 4, 4};
  out.emplace_back("open_reply", sv::encode_message(open_reply));

  sv::StepEpochRequest step;
  step.head = head(sv::MsgType::kStepEpoch, 9, 3);
  step.epoch = 41;
  step.obs = canonical_obs();
  out.emplace_back("step_request", sv::encode_message(step));

  sv::StepEpochReply step_reply;
  step_reply.head = head(sv::MsgType::kStepReply, 9, 3);
  step_reply.epoch = 41;
  step_reply.levels = {0, 3, 7};
  step_reply.sanitized = 1;
  step_reply.watchdog_holding = true;
  out.emplace_back("step_reply", sv::encode_message(step_reply));

  sv::SnapshotRequest snap_req;
  snap_req.head = head(sv::MsgType::kSnapshot, 10, 3);
  out.emplace_back("snapshot_request", sv::encode_message(snap_req));

  sv::SnapshotReply snap_reply;
  snap_reply.head = head(sv::MsgType::kSnapshotReply, 10, 3);
  snap_reply.epoch = 42;
  snap_reply.blob = "opaque session snapshot bytes";
  out.emplace_back("snapshot_reply", sv::encode_message(snap_reply));

  sv::CloseSessionRequest close_req;
  close_req.head = head(sv::MsgType::kCloseSession, 11, 3);
  out.emplace_back("close_request", sv::encode_message(close_req));

  sv::CloseSessionReply close_reply;
  close_reply.head = head(sv::MsgType::kCloseReply, 11, 3);
  close_reply.epochs = 42;
  close_reply.sanitized = 5;
  out.emplace_back("close_reply", sv::encode_message(close_reply));

  sv::ErrorReply err;
  err.head = head(sv::MsgType::kErrorReply, 12, 3);
  err.status = sv::ServiceStatus::kOutOfOrderEpoch;
  err.message = "golden error text";
  out.emplace_back("error_reply", sv::encode_message(err));

  // One length-prefixed stream, so the frame layer itself is pinned too.
  out.emplace_back("framed_hello_stream",
                   sv::encode_frame(sv::encode_message(hello)) +
                       sv::encode_frame(sv::encode_message(hello_reply)));
  return out;
}

bool print_mode() {
  const char* v = std::getenv("ODRL_GOLDEN_PRINT");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

const WireGoldenCase* find_case(const std::string& name) {
  for (const WireGoldenCase& c : kWireGoldenCases) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

}  // namespace

TEST(ServiceWireGolden, DigestsMatchCommittedTable) {
  const auto frames = canonical_frames();
  for (const auto& [name, bytes] : frames) {
    const std::uint64_t digest = snap::fnv1a64(bytes);
    if (print_mode()) {
      // Machine-readable line for tools/regen_goldens.py.
      std::printf("WIREGOLDEN %s %zu 0x%016llx\n", name.c_str(), bytes.size(),
                  static_cast<unsigned long long>(digest));
      continue;
    }
    SCOPED_TRACE("frame: " + name);
    const WireGoldenCase* want = find_case(name);
    ASSERT_NE(want, nullptr)
        << "no committed wire golden for '" << name
        << "' -- regenerate with: python3 tools/regen_goldens.py";
    EXPECT_EQ(bytes.size(), want->size)
        << "wire frame size drifted. The wire format changed: bump "
           "kWireVersion and regenerate with: python3 tools/regen_goldens.py";
    EXPECT_EQ(digest, want->digest)
        << "wire bytes drifted (got 0x" << std::hex << digest
        << ", committed 0x" << want->digest << std::dec
        << "). The wire format changed: bump kWireVersion and regenerate "
           "with: python3 tools/regen_goldens.py";
  }
  if (print_mode()) {
    GTEST_SKIP() << "ODRL_GOLDEN_PRINT set: emitting digests, not checking";
  }
}

TEST(ServiceWireGolden, TableCoversExactlyTheCanonicalFrames) {
  if (print_mode()) GTEST_SKIP() << "regenerating, table may be stale";
  const auto frames = canonical_frames();
  for (const auto& [name, bytes] : frames) {
    EXPECT_NE(find_case(name), nullptr) << name;
  }
  EXPECT_EQ(std::size(kWireGoldenCases), frames.size())
      << "service_wire_digests.inc rows do not match the canonical frame "
         "list -- regenerate with: python3 tools/regen_goldens.py";
}

TEST(ServiceWireGolden, CanonicalFramesRoundTrip) {
  // Independent of the committed table: every canonical frame must decode
  // and re-encode to the same bytes (the codec is deterministic and
  // total on its own output).
  for (const auto& [name, bytes] : canonical_frames()) {
    if (name == std::string("framed_hello_stream")) continue;  // stream, not
                                                               // a payload
    SCOPED_TRACE("frame: " + name);
    const sv::Message msg = sv::decode_message(bytes);
    EXPECT_EQ(sv::encode_message(msg), bytes);
  }
}
