// Unit tests for the tabular-RL substrate, including convergence checks of
// the TD agent on small synthetic MDPs.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rl/agent.hpp"
#include "rl/discretizer.hpp"
#include "rl/qtable.hpp"
#include "rl/schedule.hpp"
#include "util/rng.hpp"

namespace orl = odrl::rl;
using odrl::util::Rng;

// -------------------------------------------------------- Discretizer

TEST(Discretizer, BinsAndClamping) {
  const orl::Discretizer d(0.0, 1.0, 4);
  EXPECT_EQ(d.bin(-0.5), 0u);
  EXPECT_EQ(d.bin(0.0), 0u);
  EXPECT_EQ(d.bin(0.1), 0u);
  EXPECT_EQ(d.bin(0.3), 1u);
  EXPECT_EQ(d.bin(0.6), 2u);
  EXPECT_EQ(d.bin(0.9), 3u);
  EXPECT_EQ(d.bin(1.0), 3u);
  EXPECT_EQ(d.bin(5.0), 3u);
}

TEST(Discretizer, BinEdgeFallsOnExactBoundary) {
  // With 10 bins over [0, 2], 1.0 is an exact edge: just-under goes to bin
  // 4, just-over to bin 5. The controller's no-aliasing property.
  const orl::Discretizer d(0.0, 2.0, 10);
  EXPECT_EQ(d.bin(0.999999), 4u);
  EXPECT_EQ(d.bin(1.000001), 5u);
}

TEST(Discretizer, CenterRoundTrips) {
  const orl::Discretizer d(-1.0, 1.0, 8);
  for (std::size_t b = 0; b < 8; ++b) {
    EXPECT_EQ(d.bin(d.center(b)), b);
  }
  EXPECT_THROW(d.center(8), std::out_of_range);
}

TEST(Discretizer, RejectsBadConstruction) {
  EXPECT_THROW(orl::Discretizer(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(orl::Discretizer(0.0, 1.0, 0), std::invalid_argument);
}

// --------------------------------------------------------- StateSpace

TEST(StateSpace, EncodeDecodeRoundTrip) {
  const orl::StateSpace s({3, 4, 5});
  EXPECT_EQ(s.size(), 60u);
  for (std::size_t id = 0; id < s.size(); ++id) {
    const auto coords = s.decode(id);
    EXPECT_EQ(s.encode(coords), id);
  }
}

TEST(StateSpace, EncodingIsBijective) {
  const orl::StateSpace s({2, 3});
  std::vector<bool> seen(s.size(), false);
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      const std::size_t coords[2] = {a, b};
      const std::size_t id = s.encode(coords);
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
}

TEST(StateSpace, Validation) {
  EXPECT_THROW(orl::StateSpace({}), std::invalid_argument);
  EXPECT_THROW(orl::StateSpace({3, 0}), std::invalid_argument);
  const orl::StateSpace s({2, 2});
  const std::size_t bad[2] = {2, 0};
  EXPECT_THROW(s.encode(bad), std::out_of_range);
  const std::size_t wrong_arity[1] = {0};
  EXPECT_THROW(s.encode(wrong_arity), std::invalid_argument);
  EXPECT_THROW(s.decode(4), std::out_of_range);
  EXPECT_THROW(s.dim(2), std::out_of_range);
}

// -------------------------------------------------------------- QTable

TEST(QTable, InitAndAccess) {
  orl::QTable t(4, 3, 0.5);
  EXPECT_EQ(t.n_states(), 4u);
  EXPECT_EQ(t.n_actions(), 3u);
  EXPECT_DOUBLE_EQ(t.q(2, 1), 0.5);
  t.set_q(2, 1, 2.0);
  EXPECT_DOUBLE_EQ(t.q(2, 1), 2.0);
  EXPECT_DOUBLE_EQ(t.bump_q(2, 1, 0.5), 2.5);
}

TEST(QTable, GreedyActionAndTies) {
  orl::QTable t(2, 3, 0.0);
  t.set_q(0, 2, 1.0);
  EXPECT_EQ(t.greedy_action(0), 2u);
  EXPECT_DOUBLE_EQ(t.max_q(0), 1.0);
  // All equal in state 1: first index wins.
  EXPECT_EQ(t.greedy_action(1), 0u);
}

TEST(QTable, RowView) {
  orl::QTable t(2, 3, 0.0);
  t.set_q(1, 0, 7.0);
  const auto row = t.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 7.0);
}

TEST(QTable, VisitBookkeeping) {
  orl::QTable t(2, 2, 0.0);
  EXPECT_EQ(t.coverage(), 0u);
  t.record_visit(0, 1);
  t.record_visit(0, 1);
  t.record_visit(1, 0);
  EXPECT_EQ(t.visits(0, 1), 2u);
  EXPECT_EQ(t.state_visits(0), 2u);
  EXPECT_EQ(t.coverage(), 2u);
}

TEST(QTable, BoundsChecking) {
  orl::QTable t(2, 2, 0.0);
  EXPECT_THROW(t.q(2, 0), std::out_of_range);
  EXPECT_THROW(t.q(0, 2), std::out_of_range);
  EXPECT_THROW(orl::QTable(0, 2), std::invalid_argument);
  EXPECT_THROW(orl::QTable(2, 0), std::invalid_argument);
}

// ----------------------------------------------------------- Schedules

TEST(EpsilonSchedule, DecaysToFloor) {
  orl::EpsilonSchedule s(1.0, 0.1, 0.5);
  EXPECT_DOUBLE_EQ(s.at(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(1), 0.5);
  EXPECT_DOUBLE_EQ(s.at(2), 0.25);
  EXPECT_DOUBLE_EQ(s.at(10), 0.1);  // floor
}

TEST(EpsilonSchedule, NextAdvances) {
  orl::EpsilonSchedule s(1.0, 0.0, 0.5);
  EXPECT_DOUBLE_EQ(s.next(), 1.0);
  EXPECT_DOUBLE_EQ(s.next(), 0.5);
  EXPECT_DOUBLE_EQ(s.current(), 0.25);
  s.reset();
  EXPECT_DOUBLE_EQ(s.current(), 1.0);
}

TEST(EpsilonSchedule, ConstantFactory) {
  auto s = orl::EpsilonSchedule::constant(0.2);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(s.next(), 0.2);
}

TEST(EpsilonSchedule, Validation) {
  EXPECT_THROW(orl::EpsilonSchedule(1.5, 0.1, 0.9), std::invalid_argument);
  EXPECT_THROW(orl::EpsilonSchedule(0.5, 0.6, 0.9), std::invalid_argument);
  EXPECT_THROW(orl::EpsilonSchedule(0.5, 0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(orl::EpsilonSchedule(0.5, 0.1, 1.5), std::invalid_argument);
}

TEST(LearningRateSchedule, ConstantAndDecay) {
  const auto c = orl::LearningRateSchedule::constant(0.3);
  EXPECT_DOUBLE_EQ(c.rate(0), 0.3);
  EXPECT_DOUBLE_EQ(c.rate(1000), 0.3);

  const auto d = orl::LearningRateSchedule::visit_decay(0.5, 10.0);
  EXPECT_DOUBLE_EQ(d.rate(0), 0.5);
  EXPECT_DOUBLE_EQ(d.rate(10), 0.25);
  EXPECT_GT(d.rate(10), d.rate(100));
}

TEST(LearningRateSchedule, Validation) {
  EXPECT_THROW(orl::LearningRateSchedule::constant(0.0),
               std::invalid_argument);
  EXPECT_THROW(orl::LearningRateSchedule::constant(1.5),
               std::invalid_argument);
  EXPECT_THROW(orl::LearningRateSchedule::visit_decay(0.5, 0.0),
               std::invalid_argument);
}

// --------------------------------------------------------------- Agent

namespace {
orl::TdConfig fast_config(orl::TdRule rule = orl::TdRule::kQLearning) {
  orl::TdConfig c;
  c.rule = rule;
  c.gamma = 0.9;
  c.q_init = 0.0;
  c.epsilon = orl::EpsilonSchedule(0.3, 0.05, 0.999);
  c.alpha = orl::LearningRateSchedule::constant(0.2);
  return c;
}
}  // namespace

TEST(TdAgent, LearnsBanditArm) {
  // Single state, 3 actions with rewards 0.1 / 0.9 / 0.5.
  orl::TdAgent agent(1, 3, fast_config());
  Rng rng(1);
  const double rewards[3] = {0.1, 0.9, 0.5};
  for (int i = 0; i < 2000; ++i) {
    const auto a = agent.act(0, rng);
    agent.learn(0, a, rewards[a], 0);
  }
  EXPECT_EQ(agent.exploit(0), 1u);
}

TEST(TdAgent, QLearningConvergesOnChain) {
  // 3-state chain: s0 -right-> s1 -right-> s2(terminal-ish, reward 1, loops).
  // Actions: 0 = left/stay, 1 = right. Optimal: always right.
  orl::TdAgent agent(3, 2, fast_config());
  Rng rng(2);
  std::size_t s = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto a = agent.act(s, rng);
    std::size_t s2 = s;
    double r = 0.0;
    if (a == 1) {
      s2 = std::min<std::size_t>(s + 1, 2);
      if (s2 == 2) r = 1.0;
    } else {
      s2 = s == 0 ? 0 : s - 1;
    }
    agent.learn(s, a, r, s2);
    s = s2;
    if (s == 2) s = 0;  // restart episodes
  }
  EXPECT_EQ(agent.exploit(0), 1u);
  EXPECT_EQ(agent.exploit(1), 1u);
  // Episodes reset on reaching s2, so s2 itself is never updated (Q = 0):
  // the pre-reward state's value converges to the immediate reward, and the
  // start state to its gamma-discount.
  EXPECT_NEAR(agent.table().max_q(1), 1.0, 0.2);
  EXPECT_NEAR(agent.table().max_q(0), 0.9, 0.2);
}

TEST(TdAgent, SarsaNeedsNextAction) {
  orl::TdAgent agent(2, 2, fast_config(orl::TdRule::kSarsa));
  EXPECT_THROW(agent.learn(0, 0, 1.0, 1), std::invalid_argument);
  EXPECT_NO_THROW(agent.learn(0, 0, 1.0, 1, 1));
}

TEST(TdAgent, SarsaAlsoLearnsBandit) {
  orl::TdAgent agent(1, 2, fast_config(orl::TdRule::kSarsa));
  Rng rng(5);
  std::size_t a = agent.act(0, rng);
  for (int i = 0; i < 3000; ++i) {
    const double r = a == 0 ? 0.2 : 0.8;
    const std::size_t a2 = agent.act(0, rng);
    agent.learn(0, a, r, 0, a2);
    a = a2;
  }
  EXPECT_EQ(agent.exploit(0), 1u);
}

TEST(TdAgent, ExploitDoesNotAdvanceSchedule) {
  orl::TdAgent agent(1, 2, fast_config());
  const double eps_before = agent.epsilon();
  for (int i = 0; i < 10; ++i) agent.exploit(0);
  EXPECT_DOUBLE_EQ(agent.epsilon(), eps_before);
}

TEST(TdAgent, ResetClearsLearning) {
  orl::TdAgent agent(1, 2, fast_config());
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto a = agent.act(0, rng);
    agent.learn(0, a, 1.0, 0);
  }
  EXPECT_GT(agent.updates(), 0u);
  agent.reset();
  EXPECT_EQ(agent.updates(), 0u);
  EXPECT_DOUBLE_EQ(agent.table().q(0, 0), 0.0);
  EXPECT_EQ(agent.table().coverage(), 0u);
}

TEST(TdAgent, OptimisticInitDrivesSystematicExploration) {
  orl::TdConfig c = fast_config();
  c.q_init = 10.0;  // far above any achievable value
  c.epsilon = orl::EpsilonSchedule::constant(0.0);  // pure greedy
  orl::TdAgent agent(1, 4, c);
  Rng rng(9);
  std::set<std::size_t> tried;
  for (int i = 0; i < 40; ++i) {
    const auto a = agent.act(0, rng);
    tried.insert(a);
    agent.learn(0, a, 0.1, 0);
  }
  // Greedy + optimistic init must still visit every action.
  EXPECT_EQ(tried.size(), 4u);
}

TEST(TdConfig, GammaValidation) {
  orl::TdConfig c;
  c.gamma = 1.0;
  EXPECT_THROW(orl::TdAgent(1, 2, c), std::invalid_argument);
  c.gamma = -0.1;
  EXPECT_THROW(orl::TdAgent(1, 2, c), std::invalid_argument);
}
