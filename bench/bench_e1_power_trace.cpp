// E1 -- chip power vs. time under the TDP budget (the paper's motivating
// power-trace figure).
//
// 64 cores, mixed workload suite, TDP = 60% of peak. After a steady segment
// the budget drops to 45% of peak (rack-level power-cap event) so the figure
// also shows on-line adaptation. Output: one downsampled time-series table,
// one column per controller -- plot epoch vs. watts to regenerate the
// figure. The expected shape: OD-RL hugs the budget from below; PID
// oscillates around it; Greedy/MaxBIPS ride on top of it with overshoot
// spikes at phase changes; Static sits flat and low.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace odrl;

int main() {
  bench::print_header(
      "E1: chip power trace under TDP (64 cores, mixed suite)",
      "OD-RL tracks the budget from below; prediction-based baselines "
      "overshoot at phase changes; all adapt to the mid-run cap drop");

  constexpr std::size_t kCores = 64;
  constexpr std::size_t kWarmup = 3000;
  constexpr std::size_t kEpochs = 3000;
  constexpr std::size_t kSample = 50;  // downsampling stride

  const arch::ChipConfig chip = arch::ChipConfig::make(kCores, 0.6);
  const double drop_w = 0.45 * chip.max_chip_power_w();
  const auto trace = bench::record_mixed_trace(kCores, kWarmup + kEpochs);

  std::vector<sim::RunResult> runs;
  for (const auto& entry : bench::standard_controllers()) {
    auto controller = entry.make(chip);
    runs.push_back(bench::run_measured(chip, trace, *controller, kEpochs,
                                       kWarmup,
                                       {{kEpochs / 2, drop_w}}));
  }

  util::Table table({"epoch", "budget[W]", "OD-RL", "PID", "Greedy",
                     "MaxBIPS", "Static"});
  for (std::size_t e = 0; e < kEpochs; e += kSample) {
    std::vector<std::string> row{std::to_string(e),
                                 util::Table::fmt(runs[0].trace[e].budget_w, 1)};
    for (const auto& run : runs) {
      row.push_back(util::Table::fmt(run.trace[e].true_chip_power_w, 1));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render("chip power [W] per epoch (downsampled)")
                          .c_str());

  std::printf("run summary:\n%s\n",
              metrics::comparison_table(runs).render().c_str());
  return 0;
}
