// E6 -- on-line learning convergence (the paper's model-free/on-line
// property: no offline training phase exists, so the controller must become
// good *while* controlling).
//
// A single OD-RL run from cold start on the 16-core mixed suite; no warmup
// -- the ramp itself is the result. Reported per 250-epoch window: mean
// agent reward, chip power vs. budget, throughput, and OTB energy. A
// power-cap drop at epoch 4000 shows re-convergence after an environment
// change. Expected shape: reward and power climb over the first ~1-2k
// epochs and flatten; after the cap drop they dip and recover within a few
// hundred epochs.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/odrl_controller.hpp"
#include "util/table.hpp"

using namespace odrl;

int main() {
  bench::print_header(
      "E6: OD-RL on-line convergence from cold start (16 cores)",
      "model-free on-line learning: no offline training phase");

  constexpr std::size_t kCores = 16;
  constexpr std::size_t kEpochs = 8000;
  constexpr std::size_t kWindow = 250;
  constexpr std::size_t kDropEpoch = 4000;

  const arch::ChipConfig chip = arch::ChipConfig::make(kCores, 0.6);
  const double drop_w = 0.45 * chip.max_chip_power_w();

  sim::SimConfig sc;
  sc.sensor_noise_rel = bench::kSensorNoise;
  sim::ManyCoreSystem system(chip,
                             std::make_unique<workload::GeneratedWorkload>(
                                 workload::GeneratedWorkload::mixed_suite(
                                     kCores, bench::kSeed)),
                             sc);
  auto controller_ptr = sim::make_controller("OD-RL", chip);
  auto& controller = dynamic_cast<core::OdrlController&>(*controller_ptr);

  util::Table table({"window", "reward", "power[W]", "budget[W]", "BIPS",
                     "OTB[mJ]", "mu"});

  auto levels = controller.initial_levels(kCores);
  std::vector<std::size_t> next(kCores, 0);
  sim::EpochResult obs;
  double window_reward = 0.0;
  double window_power = 0.0;
  double window_ips = 0.0;
  double window_otb = 0.0;

  for (std::size_t e = 0; e < kEpochs; ++e) {
    if (e == kDropEpoch) {
      system.set_budget_w(drop_w);
      controller.on_budget_change(drop_w);
    }
    system.step_into(levels, obs);
    controller.decide_into(obs, next);
    levels.swap(next);

    window_reward += controller.last_mean_reward();
    window_power += obs.true_chip_power_w;
    window_ips += obs.total_ips;
    window_otb +=
        std::max(0.0, obs.true_chip_power_w - obs.budget_w) * obs.epoch_s;

    if ((e + 1) % kWindow == 0) {
      const auto n = static_cast<double>(kWindow);
      table.add_row({std::to_string(e + 1 - kWindow) + "-" +
                         std::to_string(e + 1),
                     util::Table::fmt(window_reward / n, 3),
                     util::Table::fmt(window_power / n, 1),
                     util::Table::fmt(obs.budget_w, 1),
                     util::Table::fmt(window_ips / n / 1e9, 2),
                     util::Table::fmt(window_otb * 1e3, 2),
                     util::Table::fmt(controller.overcommit_mu(), 2)});
      window_reward = window_power = window_ips = window_otb = 0.0;
    }
  }

  std::printf("%s\n",
              table.render("per-window means; budget drops at epoch 4000")
                  .c_str());

  std::printf("Q-table coverage after the run (core 0): %zu of %zu "
              "(state,action) pairs visited\n",
              controller.agent(0).table().coverage(),
              controller.agent(0).table().n_states() *
                  controller.agent(0).table().n_actions());
  return 0;
}
