// E7 -- ablation of OD-RL's design choices (the design-decision study for
// the knobs DESIGN.md calls out).
//
// Each variant runs the same 16-core mixed trace. Groups:
//   1. contribution split: full OD-RL vs. local RL only (no global
//      reallocation) vs. global-only (reallocation with a non-learning
//      proportional local rule approximated by absolute-action greedy RL
//      disabled -> represented here by PID for reference);
//   2. reallocation period;
//   3. state resolution (headroom x memory bins);
//   4. reward shaping (lambda, kappa);
//   5. action space (relative vs. absolute);
//   6. TD rule (Q-learning vs. SARSA).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace odrl;

namespace {

struct Variant {
  std::string name;
  sim::ControllerOverrides overrides;
};

std::vector<Variant> variants() {
  return {
      {"full (default)", {}},
      {"no global realloc", {{"global_realloc", "false"}}},
      {"realloc period 10", {{"realloc_period", "10"}}},
      {"realloc period 200", {{"realloc_period", "200"}}},
      {"coarse state (4x2)", {{"headroom_bins", "4"}, {"mem_bins", "2"}}},
      {"fine state (20x10)", {{"headroom_bins", "20"}, {"mem_bins", "10"}}},
      {"lambda 1", {{"lambda", "1"}}},
      {"lambda 20", {{"lambda", "20"}}},
      {"no freq shaping", {{"kappa", "0"}}},
      {"absolute actions", {{"action_mode", "absolute"}}},
      {"SARSA", {{"rule", "sarsa"}}},
      {"target fill 0.80", {{"target_fill", "0.8"}}},
  };
}

}  // namespace

int main() {
  bench::print_header(
      "E7: OD-RL design-choice ablation (16 cores, mixed suite, 60% TDP)",
      "contribution split and sensitivity of the paper's design knobs");

  constexpr std::size_t kCores = 16;
  constexpr std::size_t kWarmup = 3000;
  constexpr std::size_t kEpochs = 3000;

  const arch::ChipConfig chip = arch::ChipConfig::make(kCores, 0.6);
  const auto trace = bench::record_mixed_trace(kCores, kWarmup + kEpochs);

  util::Table table({"variant", "BIPS", "power[W]", "OTB[J]", "BIPS/W",
                     "decide[us]"});
  auto add_run = [&](const std::string& name, const sim::RunResult& run) {
    table.add_row({name, util::Table::fmt(run.bips(), 2),
                   util::Table::fmt(run.mean_power_w, 1),
                   util::Table::fmt(run.otb_energy_j, 3),
                   util::Table::fmt(run.bips_per_watt(), 3),
                   util::Table::fmt(run.mean_decision_us(), 2)});
  };
  for (const auto& variant : variants()) {
    auto controller = sim::make_controller("OD-RL", chip, variant.overrides);
    add_run(variant.name,
            bench::run_measured(chip, trace, *controller, kEpochs, kWarmup));
  }

  // Actuation-cost row: same default controller, but level switches stall
  // the core for 50 us and burn 0.5 mJ each (non-ideal regulators).
  {
    auto controller = sim::make_controller("OD-RL", chip);
    sim::SimConfig sc;
    sc.sensor_noise_rel = bench::kSensorNoise;
    sc.switch_penalty_s = 50e-6;
    sc.switch_energy_j = 0.5e-3;
    sim::ManyCoreSystem system(
        chip, std::make_unique<workload::ReplayWorkload>(trace), sc);
    sim::RunConfig rc;
    rc.epochs = kEpochs;
    rc.warmup_epochs = kWarmup;
    add_run("with actuation cost",
            sim::run_closed_loop(system, *controller, rc));
  }

  std::printf("%s\n", table.render("ablation variants").c_str());
  return 0;
}
