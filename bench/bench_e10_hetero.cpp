// E10 (extension) -- heterogeneous (big.LITTLE) chip.
//
// 8 wide out-of-order cores + 8 narrow in-order cores, mixed workload
// suite, TDP = 55% of the heterogeneous chip's peak. OD-RL runs
// *unmodified*: each model-free agent learns its own core's landscape, and
// the reallocator routes watts by observed marginal utility, so the budget
// migrates to big cores running compute-bound tenants without anyone
// telling the controller which cores are big. Model-based baselines carry
// one nominal parameter set (the homogeneous chip's), so their power
// predictions are biased on both core types.
//
// Expected shape: same qualitative ordering as the homogeneous comparison
// (OD-RL near-zero overshoot, competitive throughput, best efficiency);
// the per-type digest shows big cores holding most of the budget.
#include <cstdio>
#include <memory>
#include <vector>

#include "arch/hetero.hpp"
#include "bench_common.hpp"
#include "core/odrl_controller.hpp"
#include "util/table.hpp"

using namespace odrl;

int main() {
  bench::print_header(
      "E10 (extension): big.LITTLE chip, 8+8 cores, mixed suite",
      "model-free control handles heterogeneous silicon unmodified");

  constexpr std::size_t kCores = 16;
  constexpr std::size_t kWarmup = 3000;
  constexpr std::size_t kEpochs = 3000;

  const auto layout = arch::clustered_layout(/*n_big=*/8, kCores);
  // Budget: 55% of the *heterogeneous* peak.
  arch::ChipConfig nominal = arch::ChipConfig::make(kCores, 0.6);
  const double peak = arch::hetero_max_chip_power_w(nominal, layout.params);
  const arch::ChipConfig chip = nominal.with_tdp(0.55 * peak);
  std::printf("heterogeneous peak %.1f W, TDP %.1f W\n\n", peak,
              chip.tdp_w());

  const auto trace = bench::record_mixed_trace(kCores, kWarmup + kEpochs);

  std::vector<sim::RunResult> runs;
  for (const auto& entry : bench::standard_controllers()) {
    auto controller = entry.make(chip);
    sim::SimConfig sc;
    sc.sensor_noise_rel = bench::kSensorNoise;
    sim::ManyCoreSystem system(
        chip, std::make_unique<workload::ReplayWorkload>(trace), sc,
        layout.params);
    sim::RunConfig rc;
    rc.epochs = kEpochs;
    rc.warmup_epochs = kWarmup;
    runs.push_back(sim::run_closed_loop(system, *controller, rc));
  }
  std::printf("%s\n", metrics::comparison_table(runs)
                          .render("controllers on the big.LITTLE chip")
                          .c_str());

  // Per-type digest for OD-RL: where did the budget go? Re-run with direct
  // access to the controller's introspection.
  {
    auto controller_ptr = sim::make_controller("OD-RL", chip);
    auto& controller =
        dynamic_cast<core::OdrlController&>(*controller_ptr);
    sim::SimConfig sc;
    sc.sensor_noise_rel = bench::kSensorNoise;
    sim::ManyCoreSystem system(
        chip, std::make_unique<workload::ReplayWorkload>(trace), sc,
        layout.params);
    auto levels = controller.initial_levels(kCores);
    std::vector<std::size_t> next(kCores, 0);
    sim::EpochResult obs;
    for (std::size_t e = 0; e < kWarmup; ++e) {
      system.step_into(levels, obs);
      controller.decide_into(obs, next);
      levels.swap(next);
    }
    double big_budget = 0.0;
    double little_budget = 0.0;
    double big_power = 0.0;
    double little_power = 0.0;
    for (std::size_t i = 0; i < kCores; ++i) {
      const bool is_big = layout.labels[i] == "big";
      (is_big ? big_budget : little_budget) += controller.core_budgets()[i];
      (is_big ? big_power : little_power) += obs.cores[i].power_w;
    }
    std::printf("OD-RL budget split after convergence: big cores %.1f W "
                "(drawing %.1f W), little cores %.1f W (drawing %.1f W)\n",
                big_budget, big_power, little_budget, little_power);
  }
  return 0;
}
