// E2 -- budget-overshoot table (abstract claim: "up to 98% less budget
// overshoot" than state-of-the-art controllers).
//
// For each of the 13 benchmark profiles (all 16 cores run the profile, phase-shifted)
// plus the heterogeneous mix, every controller is replayed on the same
// trace; the table reports over-the-budget energy in joules, and the final
// rows give OD-RL's overshoot reduction vs. each baseline (computed on the
// totals across benchmarks).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace odrl;

int main() {
  bench::print_header(
      "E2: over-the-budget energy per benchmark (16 cores, TDP = 60% peak)",
      "up to 98% less budget overshoot than state-of-the-art");

  constexpr std::size_t kCores = 16;
  constexpr std::size_t kWarmup = 2500;
  constexpr std::size_t kEpochs = 2500;

  const arch::ChipConfig chip = arch::ChipConfig::make(kCores, 0.6);
  const auto controllers = bench::standard_controllers();

  util::Table table({"benchmark", "OD-RL[J]", "PID[J]", "Greedy[J]",
                     "MaxBIPS[J]", "Static[J]"});
  std::vector<double> totals(controllers.size(), 0.0);

  auto add_row = [&](const std::string& name,
                     const workload::RecordedTrace& trace) {
    std::vector<std::string> row{name};
    for (std::size_t c = 0; c < controllers.size(); ++c) {
      auto controller = controllers[c].make(chip);
      const auto run =
          bench::run_measured(chip, trace, *controller, kEpochs, kWarmup);
      totals[c] += run.otb_energy_j;
      row.push_back(util::Table::fmt(run.otb_energy_j, 3));
    }
    table.add_row(std::move(row));
  };

  std::uint64_t seed = bench::kSeed;
  for (const auto& profile : workload::benchmark_suite()) {
    add_row(profile.name,
            bench::record_trace(kCores, kWarmup + kEpochs, {profile}, ++seed));
  }
  add_row("mixed.suite",
          bench::record_mixed_trace(kCores, kWarmup + kEpochs, ++seed));

  std::vector<std::string> total_row{"TOTAL"};
  for (double t : totals) total_row.push_back(util::Table::fmt(t, 3));
  table.add_row(std::move(total_row));
  std::printf("%s\n", table.render("OTB energy [J], lower is better").c_str());

  std::printf("OD-RL overshoot reduction on totals:\n");
  for (std::size_t c = 1; c < controllers.size(); ++c) {
    const double base = std::max(totals[c], 1e-3);
    const double ours = std::max(totals[0], 1e-3);
    std::printf("  vs %-8s %6.1f%% less OTB energy\n",
                controllers[c].name.c_str(), 100.0 * (1.0 - ours / base));
  }
  return 0;
}
