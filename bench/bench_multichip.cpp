// Multi-chip fleet throughput sweep: chips x cores x workers, measuring
// aggregate chip-epochs per second on the shared work-stealing runtime
// plus the runtime's steal/overflow counters, with machine-readable
// output: BENCH_multichip.json.
//
// The acceptance property (>= 3x epochs/s scaling from 1 to 8 workers at
// 8 chips) only has meaning on a machine with >= 8 CPUs, so the JSON
// records `cpus` and tools/check_bench_regression.py gates the scaling
// floor on it -- a 1-CPU container measures (and ratchets) only the
// per-row throughput, honestly.
//
// Output path: ODRL_BENCH_JSON=<path> (default BENCH_multichip.json;
// empty string disables writing).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "sim/multichip.hpp"

using namespace odrl;

namespace {

struct Row {
  std::size_t chips;
  std::size_t cores;
  std::size_t workers;
  std::size_t epochs;  ///< measured epochs per chip
  double wall_s;
  double chip_epochs_per_s;  ///< chips * epochs / wall
  std::uint64_t steals;
  std::uint64_t overflows;
  std::uint64_t tasks;
};

constexpr int kRounds = 2;  // best-of-2: min wall time

std::size_t epochs_for(std::size_t cores) {
  // Keep each cell a few hundred ms: smaller chips step faster.
  return cores >= 64 ? 192 : 512;
}

Row bench_cell(std::size_t chips, std::size_t cores, std::size_t workers) {
  sim::FleetConfig fc;
  fc.chips = chips;
  fc.cores = cores;
  fc.controller = "OD-RL";
  fc.epochs = epochs_for(cores);
  fc.warmup_epochs = 8;
  fc.seed = 41;
  fc.keep_traces = false;  // throughput, not traces

  Row row{chips, cores, workers, fc.epochs, 1e300, 0.0, 0, 0, 0};
  for (int round = 0; round < kRounds; ++round) {
    sim::Fleet fleet(fc);
    sim::MultiChipConfig mc;
    mc.workers = workers;
    const sim::MultiChipResult r = sim::run_multichip(fleet.specs(), mc);
    if (r.wall_s < row.wall_s) {
      row.wall_s = r.wall_s;
      row.steals = r.runtime_stats.steals;
      row.overflows = r.runtime_stats.overflows;
      row.tasks = r.runtime_stats.tasks_executed;
    }
  }
  row.chip_epochs_per_s =
      static_cast<double>(chips * fc.epochs) / row.wall_s;
  return row;
}

int write_json(const std::vector<Row>& rows, unsigned cpus) {
  const char* env = std::getenv("ODRL_BENCH_JSON");
  const std::string path = env ? env : "BENCH_multichip.json";
  if (path.empty()) return 0;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "BENCH_multichip: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"multichip\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"cpus\": %u,\n", cpus);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"chips\": %zu, \"cores\": %zu, \"workers\": %zu, "
                 "\"epochs\": %zu, \"wall_s\": %.4f, "
                 "\"chip_epochs_per_s\": %.1f, \"steals\": %llu, "
                 "\"overflows\": %llu, \"tasks\": %llu}%s\n",
                 r.chips, r.cores, r.workers, r.epochs, r.wall_s,
                 r.chip_epochs_per_s,
                 static_cast<unsigned long long>(r.steals),
                 static_cast<unsigned long long>(r.overflows),
                 static_cast<unsigned long long>(r.tasks),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("BENCH_multichip: wrote %s (%zu rows)\n", path.c_str(),
              rows.size());
  return 0;
}

}  // namespace

int main() {
  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("BENCH_multichip: %u hardware threads\n", cpus);

  std::vector<Row> rows;
  for (std::size_t chips : {std::size_t{1}, std::size_t{8}}) {
    for (std::size_t cores : {std::size_t{16}, std::size_t{64}}) {
      for (std::size_t workers :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        if (workers > chips && cores < 64) continue;  // no work to spread
        rows.push_back(bench_cell(chips, cores, workers));
      }
    }
  }

  std::printf("%6s %6s %8s %7s %9s %18s %8s %10s\n", "chips", "cores",
              "workers", "epochs", "wall_s", "chip_epochs_per_s", "steals",
              "overflows");
  for (const Row& r : rows) {
    std::printf("%6zu %6zu %8zu %7zu %9.3f %18.1f %8llu %10llu\n", r.chips,
                r.cores, r.workers, r.epochs, r.wall_s, r.chip_epochs_per_s,
                static_cast<unsigned long long>(r.steals),
                static_cast<unsigned long long>(r.overflows));
  }
  return write_json(rows, cpus);
}
