// E9 (extension) -- voltage/frequency-island granularity study.
//
// OD-RL at island granularity via the VfiAdapter: one agent and one budget
// share per island, members locked to the island's V/F. Sweeps island size
// from per-core (16 islands) to chip-wide (1 island) on the heterogeneous
// mixed suite, where granularity matters most: a compute-bound core sharing
// an island with a memory-bound one cannot get its own operating point.
//
// The workload alternates compute-bound and memory-bound tenants across
// adjacent cores, so every island of size >= 2 mixes both kinds -- the
// worst case for shared operating points, and the case that makes the
// granularity trade-off visible (islands of *similar* cores lose little).
//
// Expected shape: throughput decreases as islands coarsen; the
// single-island chip behaves like chip-wide DVFS. This reproduces the
// classic VFI design-space trade-off (per-core DVFS buys performance,
// island sharing buys regulator cost) from the VFI line of work the paper
// builds on.
#include <cstdio>
#include <memory>

#include "arch/vfi.hpp"
#include "bench_common.hpp"
#include "core/vfi_adapter.hpp"
#include "util/table.hpp"

using namespace odrl;

int main() {
  bench::print_header(
      "E9 (extension): OD-RL at VFI granularity (16 cores, mixed suite)",
      "per-core DVFS > clustered islands > chip-wide DVFS in throughput");

  constexpr std::size_t kCores = 16;
  constexpr std::size_t kWarmup = 3000;
  constexpr std::size_t kEpochs = 3000;

  const arch::ChipConfig chip = arch::ChipConfig::make(kCores, 0.6);
  // Alternating heterogeneous tenants: every 2nd core is memory-bound.
  const std::vector<workload::BenchmarkProfile> tenants{
      workload::benchmark_by_name("compute.dense"),
      workload::benchmark_by_name("memory.stream"),
      workload::benchmark_by_name("compute.branchy"),
      workload::benchmark_by_name("memory.pointer")};
  const auto trace =
      bench::record_trace(kCores, kWarmup + kEpochs, tenants);

  util::Table table({"island size", "islands", "BIPS", "power[W]", "OTB[J]",
                     "BIPS/W", "decide[us]"});

  for (std::size_t island_size : {1u, 2u, 4u, 8u, 16u}) {
    auto partition = arch::VfiPartition::blocks(kCores, island_size);
    const std::size_t n_islands = partition.n_islands();
    const arch::ChipConfig island_chip =
        core::VfiAdapter::island_chip_config(chip, partition);
    core::VfiAdapter adapter(std::move(partition),
                             sim::make_controller("OD-RL", island_chip));
    const auto run =
        bench::run_measured(chip, trace, adapter, kEpochs, kWarmup);
    table.add_row({std::to_string(island_size), std::to_string(n_islands),
                   util::Table::fmt(run.bips(), 2),
                   util::Table::fmt(run.mean_power_w, 1),
                   util::Table::fmt(run.otb_energy_j, 3),
                   util::Table::fmt(run.bips_per_watt(), 3),
                   util::Table::fmt(run.mean_decision_us(), 2)});
  }
  std::printf("%s\n", table.render("OD-RL per VFI partition").c_str());
  return 0;
}
