// Per-kernel microbenchmarks for the four vectorized epoch kernels, with
// machine-readable output: BENCH_kernels.json.
//
// Each kernel is timed twice over identical inputs:
//   baseline  -- the pre-vectorization reference, compiled in this
//                (default-ISA) translation unit exactly like the original
//                code was. For the power kernel that is the scalar
//                PowerModel::core_power_at loop the simulator used before
//                the batch model existed (two std::exp per core); for the
//                TD kernel the sequential TdAgent::learn loop; for thermal
//                and realloc, bench-local verbatim copies of the pre-PR
//                implementations (nested neighbour vectors / the fused
//                demand loop).
//   simd      -- the shipping kernel with vectorization active.
//
// Both sides produce bit-identical results (tests/simd_kernel_test.cpp),
// so the ratio is pure throughput. Timing is best-of-N (min over rounds)
// to shed scheduler noise; tools/check_bench_regression.py ratchets the
// committed JSON so the speedups cannot silently regress.
//
// Output path: ODRL_BENCH_JSON=<path> (default BENCH_kernels.json; empty
// string disables writing).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "arch/mesh.hpp"
#include "arch/vf_table.hpp"
#include "core/budget_realloc.hpp"
#include "power/batch_power.hpp"
#include "power/power_model.hpp"
#include "rl/agent.hpp"
#include "rl/td_batch.hpp"
#include "thermal/thermal_model.hpp"
#include "util/simd.hpp"

using namespace odrl;

namespace {

volatile double g_sink = 0.0;  // defeats dead-code elimination

struct Row {
  const char* kernel;
  std::size_t cores;
  double baseline_ns;
  double simd_ns;
  double speedup;
};

constexpr int kRounds = 3;  // best-of-3: min wall time per call

/// Calls f() `iters` times per round and returns the best (minimum)
/// per-call time in nanoseconds across kRounds rounds.
template <typename F>
double best_of_ns(std::size_t iters, F&& f) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int round = 0; round < kRounds; ++round) {
    const auto t0 = Clock::now();
    for (std::size_t it = 0; it < iters; ++it) f();
    const auto t1 = Clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iters);
    if (ns < best) best = ns;
  }
  return best;
}

std::size_t iters_for(std::size_t cores) {
  // Target roughly 1e6 core-evaluations per round so each measurement
  // runs for a few milliseconds.
  return std::max<std::size_t>(64, 1000000 / cores);
}

/// Bench-local copy of the pre-vectorization Euler step: nested
/// neighbour vectors and per-call stability constants, exactly the
/// arithmetic (and memory layout) ThermalModel shipped before the
/// flattened/SIMD kernel.
class ThermalRef {
 public:
  ThermalRef(const arch::Mesh& mesh, const arch::ThermalParams& p)
      : params_(p) {
    temps_.assign(mesh.size(), p.ambient_c);
    scratch_.assign(mesh.size(), 0.0);
    neighbors_.reserve(mesh.size());
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      neighbors_.push_back(mesh.neighbors(i));
    }
  }

  void step(std::span<const double> power_w, double dt_s) {
    const double g_max = 1.0 / params_.r_vertical_c_per_w +
                         4.0 / params_.r_lateral_c_per_w;
    const double dt_stable = 0.25 * params_.c_tile_j_per_c / g_max;
    const auto substeps = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(dt_s / dt_stable)));
    const double dt_sub = dt_s / static_cast<double>(substeps);
    for (std::size_t s = 0; s < substeps; ++s) euler(power_w, dt_sub);
  }

  double temperature(std::size_t i) const { return temps_[i]; }

 private:
  void euler(std::span<const double> power_w, double dt_s) {
    for (std::size_t i = 0; i < temps_.size(); ++i) {
      double flow = power_w[i];
      flow -= (temps_[i] - params_.ambient_c) / params_.r_vertical_c_per_w;
      for (std::size_t j : neighbors_[i]) {
        flow -= (temps_[i] - temps_[j]) / params_.r_lateral_c_per_w;
      }
      scratch_[i] = temps_[i] + dt_s * flow / params_.c_tile_j_per_c;
    }
    temps_.swap(scratch_);
  }

  arch::ThermalParams params_;
  std::vector<double> temps_;
  std::vector<double> scratch_;
  std::vector<std::vector<std::size_t>> neighbors_;
};

/// Bench-local copy of the pre-vectorization budget reallocation (the
/// fused demand/utility loop plus the exact renormalization), again at
/// this TU's default ISA.
void realloc_ref(std::span<const core::CoreDemand> demands,
                 double chip_budget_w, const core::ReallocConfig& config,
                 std::span<double> out, std::vector<double>& scratch) {
  const std::size_t n = demands.size();
  const double floor_each =
      config.floor_fraction * chip_budget_w / static_cast<double>(n);
  scratch.assign(2 * n, 0.0);
  const std::span<double> demand(scratch.data(), n);
  const std::span<double> utility(scratch.data() + n, n);

  double demand_sum = 0.0;
  double utility_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const core::CoreDemand& d = demands[i];
    const double sens = std::clamp(d.sensitivity, 0.0, 1.0);
    double headroom = config.saturated_headroom;
    if (d.can_raise) {
      headroom = config.idle_headroom +
                 sens * (config.growth_headroom - config.idle_headroom);
    }
    demand[i] = std::max(floor_each, std::max(0.0, d.power_w) * headroom);
    demand_sum += demand[i];
    utility[i] = (0.05 + sens * sens) * (d.can_raise ? 1.0 : 0.05);
    utility_sum += utility[i];
  }

  if (demand_sum <= chip_budget_w) {
    const double surplus = chip_budget_w - demand_sum;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = demand[i] + surplus * utility[i] / utility_sum;
    }
  } else {
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      weight_sum += demand[i] * (0.15 + utility[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double w = demand[i] * (0.15 + utility[i]);
      out[i] = std::max(floor_each, chip_budget_w * w / weight_sum);
    }
  }

  double sum = 0.0;
  for (double b : out) sum += b;
  const double scale = chip_budget_w / sum;
  for (double& b : out) b *= scale;
}

// ------------------------------------------------------------- power

Row bench_power(std::size_t n) {
  const arch::VfTable table = arch::VfTable::default_table();
  const arch::CoreParams params;
  const std::vector<arch::CoreParams> per_core(n, params);
  const power::BatchPowerModel batch(per_core, table);
  // Pre-PR layout: one scalar PowerModel per core.
  const std::vector<power::PowerModel> scalar_models(
      n, power::PowerModel(params));

  std::vector<std::size_t> level(n);
  std::vector<workload::PhaseSample> phases(n);
  std::vector<double> temp(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    level[i] = i % table.size();
    phases[i] = {.base_cpi = 1.0,
                 .mpki = 5.0,
                 .activity = 0.2 + 0.6 * static_cast<double>(i % 7) / 6.0};
    temp[i] = 50.0 + static_cast<double>(i % 40);
  }

  const std::size_t iters = iters_for(n);
  const double baseline = best_of_ns(iters, [&] {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = scalar_models[i]
                   .core_power_at(table[level[i]], phases[i].activity,
                                  temp[i])
                   .total_w();
    }
    g_sink = g_sink + out[n - 1];
  });
  const double simd = best_of_ns(iters, [&] {
    batch.core_power_into(0, n, level, phases, temp, out);
    g_sink = g_sink + out[n - 1];
  });
  return {"power", n, baseline, simd, baseline / simd};
}

// ------------------------------------------------------------ thermal

Row bench_thermal(std::size_t n) {
  const auto side = static_cast<std::size_t>(std::lround(std::sqrt(
      static_cast<double>(n))));
  const arch::Mesh mesh(side, side);
  ThermalRef base_model(mesh, arch::ThermalParams{});
  thermal::ThermalModel simd_model(mesh, arch::ThermalParams{});
  const std::size_t tiles = simd_model.size();
  std::vector<double> power(tiles);
  for (std::size_t i = 0; i < tiles; ++i) {
    power[i] = 1.5 + std::sin(static_cast<double>(i)) * 0.5;
  }
  const double dt = simd_model.dt_stable_s() * 0.9;  // exactly 1 substep

  const std::size_t iters = iters_for(tiles);
  const double baseline = best_of_ns(iters, [&] {
    base_model.step(power, dt);
    g_sink = g_sink + base_model.temperature(0);
  });
  const double simd = best_of_ns(iters, [&] {
    simd_model.step(power, dt);
    g_sink = g_sink + simd_model.temperature(0);
  });
  return {"thermal", tiles, baseline, simd, baseline / simd};
}

// ----------------------------------------------------------------- td

Row bench_td(std::size_t n) {
  const std::size_t n_states = 36;
  const std::size_t n_actions = 3;
  rl::TdConfig cfg;
  std::vector<rl::TdAgent> base_agents(n,
                                       rl::TdAgent(n_states, n_actions, cfg));
  std::vector<rl::TdAgent> simd_agents(n,
                                       rl::TdAgent(n_states, n_actions, cfg));
  std::vector<rl::TdAgent*> agents(n);
  std::vector<std::size_t> ps(n), pa(n), ns(n);
  std::vector<double> reward(n);
  std::vector<double> scratch(3 * n);
  std::size_t tick = 0;
  auto roll_inputs = [&] {
    ++tick;
    for (std::size_t j = 0; j < n; ++j) {
      ps[j] = (j + tick) % n_states;
      pa[j] = (j * 5 + tick) % n_actions;
      ns[j] = (j + tick + 7) % n_states;
      reward[j] = 0.1 * static_cast<double>((j + tick) % 11) - 0.5;
    }
  };

  const std::size_t iters = iters_for(n);
  const double baseline = best_of_ns(iters, [&] {
    roll_inputs();
    for (std::size_t j = 0; j < n; ++j) {
      base_agents[j].learn(ps[j], pa[j], reward[j], ns[j]);
    }
    g_sink = g_sink + base_agents[0].table().q(ps[0], pa[0]);
  });
  tick = 0;
  const double simd = best_of_ns(iters, [&] {
    roll_inputs();
    for (std::size_t j = 0; j < n; ++j) agents[j] = &simd_agents[j];
    rl::td_update_batch({.agents = agents,
                         .prev_state = ps,
                         .prev_action = pa,
                         .next_state = ns,
                         .next_action = {},
                         .reward = reward},
                        scratch);
    g_sink = g_sink + simd_agents[0].table().q(ps[0], pa[0]);
  });
  return {"td", n, baseline, simd, baseline / simd};
}

// ------------------------------------------------------------- realloc

Row bench_realloc(std::size_t n) {
  std::vector<core::CoreDemand> demands(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    demands[i].power_w = 0.5 + 0.1 * static_cast<double>(i % 13);
    demands[i].sensitivity = 0.05 * static_cast<double>(i % 19);
    demands[i].can_raise = (i % 4) != 0;
    total += demands[i].power_w;
  }
  const core::ReallocConfig cfg;
  std::vector<double> out(n);
  std::vector<double> scratch;
  core::reallocate_budget_into(demands, total * 0.8, cfg, out, scratch);

  const std::size_t iters = iters_for(n);
  const double baseline = best_of_ns(iters, [&] {
    realloc_ref(demands, total * 0.8, cfg, out, scratch);
    g_sink = g_sink + out[0];
  });
  const double simd = best_of_ns(iters, [&] {
    core::reallocate_budget_into(demands, total * 0.8, cfg, out, scratch);
    g_sink = g_sink + out[0];
  });
  return {"realloc", n, baseline, simd, baseline / simd};
}

int write_json(const std::vector<Row>& rows) {
  const char* env = std::getenv("ODRL_BENCH_JSON");
  const std::string path = env ? env : "BENCH_kernels.json";
  if (path.empty()) return 0;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "BENCH_kernels: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernels\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"simd_compiled\": %s,\n",
               util::simd_compiled() ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"cores\": %zu, "
                 "\"baseline_ns\": %.1f, \"simd_ns\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 r.kernel, r.cores, r.baseline_ns, r.simd_ns, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("BENCH_kernels: wrote %s (%zu rows)\n", path.c_str(),
              rows.size());
  return 0;
}

}  // namespace

int main() {
  if (!util::simd_compiled()) {
    std::fprintf(stderr,
                 "BENCH_kernels: warning: built without native SIMD; "
                 "speedups will be ~1.0\n");
  }
  std::vector<Row> rows;
  for (std::size_t cores : {std::size_t{64}, std::size_t{256},
                            std::size_t{1024}}) {
    rows.push_back(bench_power(cores));
    rows.push_back(bench_thermal(cores));
    rows.push_back(bench_td(cores));
    rows.push_back(bench_realloc(cores));
  }
  std::printf("%-8s %6s %14s %12s %9s\n", "kernel", "cores", "baseline_ns",
              "simd_ns", "speedup");
  for (const Row& r : rows) {
    std::printf("%-8s %6zu %14.1f %12.1f %8.2fx\n", r.kernel, r.cores,
                r.baseline_ns, r.simd_ns, r.speedup);
  }
  return write_json(rows);
}
