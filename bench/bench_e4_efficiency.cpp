// E4 -- energy efficiency (abstract claim: "up to 23% higher energy
// efficiency" than state-of-the-art).
//
// BIPS/W (and the voltage-scaling-fair BIPS^3/W) per benchmark profile on
// 16 cores at 60% TDP; geometric-mean row across benchmarks and OD-RL's
// efficiency gain vs. each baseline on the geomeans.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace odrl;

int main() {
  bench::print_header(
      "E4: energy efficiency (BIPS/W) per benchmark (16 cores, 60% TDP)",
      "up to 23% higher energy efficiency than state-of-the-art");

  constexpr std::size_t kCores = 16;
  constexpr std::size_t kWarmup = 2500;
  constexpr std::size_t kEpochs = 2500;

  const arch::ChipConfig chip = arch::ChipConfig::make(kCores, 0.6);
  const auto controllers = bench::standard_controllers();

  util::Table table({"benchmark", "OD-RL", "PID", "Greedy", "MaxBIPS",
                     "Static"});
  std::vector<std::vector<double>> eff(controllers.size());
  std::vector<std::vector<double>> eff3(controllers.size());

  std::uint64_t seed = bench::kSeed + 1000;
  auto add_row = [&](const std::string& name,
                     const workload::RecordedTrace& trace) {
    std::vector<std::string> row{name};
    for (std::size_t c = 0; c < controllers.size(); ++c) {
      auto controller = controllers[c].make(chip);
      const auto run =
          bench::run_measured(chip, trace, *controller, kEpochs, kWarmup);
      eff[c].push_back(run.bips_per_watt());
      eff3[c].push_back(run.bips3_per_watt());
      row.push_back(util::Table::fmt(run.bips_per_watt(), 3));
    }
    table.add_row(std::move(row));
  };

  for (const auto& profile : workload::benchmark_suite()) {
    add_row(profile.name,
            bench::record_trace(kCores, kWarmup + kEpochs, {profile}, ++seed));
  }
  add_row("mixed.suite",
          bench::record_mixed_trace(kCores, kWarmup + kEpochs, ++seed));

  std::vector<std::string> geo_row{"GEOMEAN"};
  std::vector<double> geomeans;
  for (auto& column : eff) {
    geomeans.push_back(util::geomean_of(column));
    geo_row.push_back(util::Table::fmt(geomeans.back(), 3));
  }
  table.add_row(std::move(geo_row));
  std::printf("%s\n", table.render("BIPS/W, higher is better").c_str());

  std::printf("OD-RL efficiency gain on geomeans (BIPS/W):\n");
  for (std::size_t c = 1; c < controllers.size(); ++c) {
    std::printf("  vs %-8s %+6.1f%%\n", controllers[c].name.c_str(),
                100.0 * (geomeans[0] / geomeans[c] - 1.0));
  }

  std::printf("\nBIPS^3/W geomeans (throughput-weighted efficiency):\n");
  for (std::size_t c = 0; c < controllers.size(); ++c) {
    std::printf("  %-8s %10.2f\n", controllers[c].name.c_str(),
                util::geomean_of(eff3[c]));
  }
  return 0;
}
