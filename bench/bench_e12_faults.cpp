// E12 -- fault-storm survival and graceful degradation.
//
// Part 1: every controller runs the same recorded workload under the same
// dense deterministic fault storm (sensor dropouts, actuation delay/drops,
// core hotplug, chip budget steps) with the runner watchdog armed. The
// table reports throughput and overshoot next to the fault/watchdog
// counters; a controller that aborts fails the bench.
//
// Part 2: the degradation guarantee itself. When the watchdog trips it
// holds every core at sim::safe_uniform_level(chip, budget) -- the level
// provisioned for worst-case activity at the junction-temperature limit.
// The check pins the chip at that level under a compute-dense (worst
// realistic) workload across a sweep of budgets and asserts true chip
// power never exceeds the budget: post-fallback power compliance is
// analytic, not luck.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/faults.hpp"
#include "util/table.hpp"

using namespace odrl;

namespace {

/// A measured run with the storm attached and the watchdog armed.
sim::RunResult run_faulted(const arch::ChipConfig& chip,
                           const workload::RecordedTrace& trace,
                           sim::Controller& controller, std::size_t epochs,
                           std::size_t warmup,
                           const sim::FaultSchedule& faults) {
  sim::SimConfig sc;
  sc.sensor_noise_rel = bench::kSensorNoise;
  sim::ManyCoreSystem system(
      chip, std::make_unique<workload::ReplayWorkload>(trace), sc);
  sim::RunConfig rc;
  rc.epochs = epochs;
  rc.warmup_epochs = warmup;
  rc.budget_events = {{0, chip.tdp_w() * 0.85}};
  rc.faults = &faults;
  rc.watchdog.enabled = true;
  return sim::run_closed_loop(system, controller, rc);
}

/// Worst epoch of true chip power with every core pinned at the safe
/// uniform level for `budget_w` -- the state the watchdog degrades to.
double worst_pinned_power(const arch::ChipConfig& chip, double budget_w,
                          std::size_t epochs) {
  sim::ManyCoreSystem system(
      chip,
      std::make_unique<workload::GeneratedWorkload>(
          chip.n_cores(), workload::benchmark_by_name("compute.dense"),
          bench::kSeed + 42),
      sim::SimConfig{});
  const std::vector<std::size_t> pinned(
      chip.n_cores(), sim::safe_uniform_level(chip, budget_w));
  double worst = 0.0;
  sim::EpochResult obs;
  for (std::size_t e = 0; e < epochs; ++e) {
    system.step_into(pinned, obs);
    worst = std::max(worst, obs.true_chip_power_w);
  }
  return worst;
}

}  // namespace

int main() {
  bench::print_header(
      "E12: fault-storm survival (16 cores, watchdog armed)",
      "graceful degradation: sensors may lie, the chip stays under budget");

  constexpr std::size_t kCores = 16;
  constexpr std::size_t kWarmup = 1000;
  constexpr std::size_t kEpochs = 2000;

  const arch::ChipConfig chip = arch::ChipConfig::make(kCores, 0.6);
  const workload::RecordedTrace trace =
      bench::record_mixed_trace(kCores, kWarmup + kEpochs, bench::kSeed + 40);

  // A storm dense enough that every fault family fires many times over the
  // measured region, generated once and replayed for every controller.
  sim::StormConfig storm;
  storm.sensor_rate = 0.005;
  storm.actuation_rate = 0.002;
  storm.offline_rate = 0.001;
  storm.budget_rate = 0.005;
  const sim::FaultSchedule faults =
      sim::FaultSchedule::random_storm(kCores, kEpochs, bench::kSeed + 41,
                                       storm);
  std::printf("storm: %zu scheduled fault events over %zu epochs\n\n",
              faults.size(), kEpochs);

  util::Table table({"controller", "BIPS", "OTB[J]", "faults", "sanitized",
                     "fb entries", "fb epochs"});
  bool all_finished = true;
  std::string failures;

  for (const auto& entry : bench::standard_controllers()) {
    auto controller = entry.make(chip);
    sim::RunResult run;
    try {
      run = run_faulted(chip, trace, *controller, kEpochs, kWarmup, faults);
    } catch (const std::exception& e) {
      all_finished = false;
      failures += "  " + entry.name + " aborted: " + e.what() + "\n";
      table.add_row({entry.name, "ABORT", "-", "-", "-", "-", "-"});
      continue;
    }
    table.add_row({entry.name, util::Table::fmt(run.bips(), 3),
                   util::Table::fmt(run.otb_energy_j, 3),
                   std::to_string(run.fault_events_applied),
                   std::to_string(run.watchdog_invalid_decisions),
                   std::to_string(run.watchdog_fallback_entries),
                   std::to_string(run.watchdog_fallback_epochs)});
  }
  std::printf("%s\n",
              table.render("fault storm, watchdog armed (fb = fallback)")
                  .c_str());

  // Part 2: the fallback state holds the budget. Sweep the budgets the
  // storm can produce (nominal down to the deepest budget-step factor).
  util::Table safety({"budget[W]", "safe lvl", "worst pinned[W]", "held"});
  bool budget_held = true;
  for (double frac : {0.85, 0.85 * storm.min_budget_factor, 0.5, 0.4}) {
    const double budget_w = chip.tdp_w() * frac;
    const std::size_t level = sim::safe_uniform_level(chip, budget_w);
    const double worst = worst_pinned_power(chip, budget_w, 500);
    const bool held = worst <= budget_w;
    budget_held = budget_held && held;
    if (!held) {
      failures += "  fallback at budget " + util::Table::fmt(budget_w, 1) +
                  " W peaked at " + util::Table::fmt(worst, 1) + " W\n";
    }
    safety.add_row({util::Table::fmt(budget_w, 1), std::to_string(level),
                    util::Table::fmt(worst, 1), held ? "yes" : "NO"});
  }
  std::printf("%s\n",
              safety.render("post-fallback compliance (compute.dense, "
                            "500 epochs pinned at the safe level)")
                  .c_str());

  const bool pass = all_finished && budget_held;
  std::printf("degradation contract: %s\n", pass ? "PASS" : "FAIL");
  if (!failures.empty()) std::printf("%s", failures.c_str());
  return pass ? 0 : 1;
}
