// E5 -- controller decision-latency scalability (the paper's
// "two orders of magnitude speedup ... for systems with hundreds of cores").
//
// Times one decide_into() call of each controller as a function of core
// count. The EpochResult fed to the controllers is produced by a real
// simulator epoch so predictions operate on realistic sensor values; only
// decide_into() is inside the timed region, matching how the runner
// attributes decision time. Since PR 3 the timed region is allocation-free,
// so these numbers are algorithmic cost, not allocator noise.
//
// Expected shape: OD-RL scales ~linearly with a tiny constant; MaxBIPS's
// knapsack DP pays O(n * levels * bins) and lands 100x+ above OD-RL at 256+
// cores; Greedy sits in between.
//
// The *Threads benchmarks sweep the deterministic parallel execution layer
// (util::ThreadPool): step-only, decide-only and full-epoch wall time at a
// fixed core count as a function of thread count. Results are bit-identical
// across thread counts (tests/threading_test.cpp pins this), so the sweep
// measures pure speedup. Run with e.g.
//   ./bench/bench_e5_scalability --benchmark_filter=Threads
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "sim/controller_registry.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

using namespace odrl;

namespace {

/// Builds a chip + one observed epoch at the given core count.
struct Fixture {
  explicit Fixture(std::size_t cores, sim::SimConfig sim = {})
      : chip(arch::ChipConfig::make(cores, 0.6)),
        system(chip,
               std::make_unique<workload::GeneratedWorkload>(
                   workload::GeneratedWorkload::mixed_suite(cores, 42)),
               sim) {
    const std::vector<std::size_t> levels(cores, chip.vf_table().size() / 2);
    system.step_into(levels, obs);
  }

  arch::ChipConfig chip;
  sim::ManyCoreSystem system;
  sim::EpochResult obs;
};

template <typename MakeController>
void run_decide_benchmark(benchmark::State& state, MakeController make) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  Fixture fx(cores);
  auto controller = make(fx.chip);
  std::vector<std::size_t> out(cores, 0);
  // Prime internal state (first decide grows the scratch buffers); after
  // this the timed region is allocation-free (tests/alloc_test.cpp).
  controller->decide_into(fx.obs, out);
  for (auto _ : state) {
    controller->decide_into(fx.obs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetComplexityN(state.range(0));
}

void BM_OdrlDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return sim::make_controller("OD-RL", chip);
  });
}

void BM_GreedyDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return sim::make_controller("Greedy", chip);
  });
}

void BM_MaxBipsDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return sim::make_controller("MaxBIPS", chip);
  });
}

void BM_PidDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return sim::make_controller("PID", chip);
  });
}

// ---------------------------------------------------------------------
// Thread-count sweeps: args = (cores, threads).

sim::SimConfig threaded_sim(std::size_t threads) {
  sim::SimConfig cfg;
  cfg.threads = threads;
  cfg.sensor_noise_rel = 0.05;  // exercise the per-core noise substreams
  return cfg;
}

/// Simulator epoch (perf/power/thermal/sensors) wall time.
void BM_StepThreads(benchmark::State& state) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  Fixture fx(cores, threaded_sim(threads));
  const std::vector<std::size_t> levels(cores, fx.chip.vf_table().size() / 2);
  sim::EpochResult obs;
  for (auto _ : state) {
    fx.system.step_into(levels, obs);
    benchmark::DoNotOptimize(obs.true_chip_power_w);
    benchmark::ClobberMemory();
  }
  state.counters["threads"] = static_cast<double>(threads);
}

/// OD-RL decide (per-core TD act/learn) wall time.
void BM_OdrlDecideThreads(benchmark::State& state) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  Fixture fx(cores, threaded_sim(threads));
  auto controller = sim::make_controller(
      "OD-RL", fx.chip, {{"threads", std::to_string(threads)}});
  std::vector<std::size_t> out(cores, 0);
  controller->decide_into(fx.obs, out);
  for (auto _ : state) {
    controller->decide_into(fx.obs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.counters["threads"] = static_cast<double>(threads);
}

/// One full control epoch: step + decide, the closed loop's unit of wall
/// time. The 8-vs-1-thread ratio of this benchmark at 256 cores is the
/// headline speedup of the parallel epoch engine.
void BM_EpochThreads(benchmark::State& state) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  Fixture fx(cores, threaded_sim(threads));
  auto controller = sim::make_controller(
      "OD-RL", fx.chip, {{"threads", std::to_string(threads)}});
  std::vector<std::size_t> levels = controller->initial_levels(cores);
  std::vector<std::size_t> next(cores, 0);
  sim::EpochResult obs;
  for (auto _ : state) {
    fx.system.step_into(levels, obs);
    controller->decide_into(obs, next);
    levels.swap(next);
    benchmark::DoNotOptimize(levels.data());
    benchmark::ClobberMemory();
  }
  state.counters["threads"] = static_cast<double>(threads);
}

// ---------------------------------------------------------------------
// Machine-readable perf trajectory: BENCH_e5.json.
//
// The Google Benchmark tables above are for humans; this compact sweep is
// for tooling. After the registered benchmarks run, main() measures, per
// (controller, core count): closed-loop throughput (epochs/s over
// step_into + decide_into) and mean decide_into() latency in us, and
// writes one JSON file so the perf trajectory diffs across PRs. Override
// the output path with ODRL_BENCH_JSON=<path> (empty string disables).

struct JsonRow {
  std::string controller;
  std::size_t cores;
  std::size_t epochs;
  double epochs_per_s;
  double mean_decide_us;
};

JsonRow measure_row(const std::string& name, std::size_t cores) {
  using Clock = std::chrono::steady_clock;
  Fixture fx(cores);
  auto controller = sim::make_controller(name, fx.chip);
  std::vector<std::size_t> levels = controller->initial_levels(cores);
  std::vector<std::size_t> next(cores, 0);
  sim::EpochResult obs;

  // MaxBIPS's DP is O(n^2 * levels); everything else is ~linear. Scale the
  // epoch count so no row takes more than a couple of seconds.
  const bool heavy = name == "MaxBIPS";
  const std::size_t warmup = heavy ? 2 : 16;
  const std::size_t epochs =
      heavy ? std::max<std::size_t>(4, 1024 / cores)
            : std::max<std::size_t>(32, 8192 / cores);

  for (std::size_t e = 0; e < warmup; ++e) {
    fx.system.step_into(levels, obs);
    controller->decide_into(obs, next);
    levels.swap(next);
  }

  double decide_s = 0.0;
  const auto run_start = Clock::now();
  for (std::size_t e = 0; e < epochs; ++e) {
    fx.system.step_into(levels, obs);
    const auto t0 = Clock::now();
    controller->decide_into(obs, next);
    const auto t1 = Clock::now();
    decide_s += std::chrono::duration<double>(t1 - t0).count();
    levels.swap(next);
  }
  const double total_s =
      std::chrono::duration<double>(Clock::now() - run_start).count();

  JsonRow row;
  row.controller = name;
  row.cores = cores;
  row.epochs = epochs;
  row.epochs_per_s =
      total_s > 0.0 ? static_cast<double>(epochs) / total_s : 0.0;
  row.mean_decide_us = decide_s / static_cast<double>(epochs) * 1e6;
  return row;
}

int write_bench_json() {
  const char* env = std::getenv("ODRL_BENCH_JSON");
  const std::string path = env ? env : "BENCH_e5.json";
  if (path.empty()) return 0;

  std::vector<JsonRow> rows;
  for (const char* name : {"OD-RL", "PID", "Greedy", "MaxBIPS", "Static"}) {
    for (std::size_t cores : {std::size_t{16}, std::size_t{64},
                              std::size_t{256}}) {
      rows.push_back(measure_row(name, cores));
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "BENCH_e5: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"e5_scalability\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(f,
                 "    {\"controller\": \"%s\", \"cores\": %zu, "
                 "\"epochs\": %zu, \"epochs_per_s\": %.3f, "
                 "\"mean_decide_us\": %.3f}%s\n",
                 r.controller.c_str(), r.cores, r.epochs, r.epochs_per_s,
                 r.mean_decide_us, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("BENCH_e5: wrote %s (%zu rows)\n", path.c_str(), rows.size());
  return 0;
}

}  // namespace

BENCHMARK(BM_OdrlDecide)->RangeMultiplier(2)->Range(16, 1024)->Complexity();
BENCHMARK(BM_GreedyDecide)->RangeMultiplier(2)->Range(16, 1024)->Complexity();
// MaxBIPS stops at 256 cores: its knapsack DP is O(n^2 * levels) once the
// power-axis resolution scales with n (see MaxBipsConfig), and beyond a few
// hundred cores a single decision takes ~1 s of wall time -- which is the
// paper's point, and would also make this harness unreasonably slow.
BENCHMARK(BM_MaxBipsDecide)->RangeMultiplier(2)->Range(16, 256)->Complexity();
BENCHMARK(BM_PidDecide)->RangeMultiplier(2)->Range(16, 1024)->Complexity();

// Thread sweeps at the paper's "hundreds of cores" operating point (plus a
// 1024-core stress point for the full epoch). UseRealTime: the work happens
// on pool workers, so CPU time of the driving thread would under-report.
BENCHMARK(BM_StepThreads)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->UseRealTime();
BENCHMARK(BM_OdrlDecideThreads)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->UseRealTime();
BENCHMARK(BM_EpochThreads)
    ->ArgsProduct({{256, 1024}, {1, 2, 4, 8}})
    ->UseRealTime();

// Custom main: the registered benchmarks run exactly as under
// BENCHMARK_MAIN(), then the compact JSON sweep appends the cross-PR
// trajectory file.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_bench_json();
}
