// E5 -- controller decision-latency scalability (the paper's
// "two orders of magnitude speedup ... for systems with hundreds of cores").
//
// Times one decide() call of each controller as a function of core count.
// The EpochResult fed to the controllers is produced by a real simulator
// epoch so predictions operate on realistic sensor values; only decide() is
// inside the timed region, matching how the runner attributes decision time.
//
// Expected shape: OD-RL scales ~linearly with a tiny constant; MaxBIPS's
// knapsack DP pays O(n * levels * bins) and lands 100x+ above OD-RL at 256+
// cores; Greedy sits in between.
//
// The *Threads benchmarks sweep the deterministic parallel execution layer
// (util::ThreadPool): step-only, decide-only and full-epoch wall time at a
// fixed core count as a function of thread count. Results are bit-identical
// across thread counts (tests/threading_test.cpp pins this), so the sweep
// measures pure speedup. Run with e.g.
//   ./bench/bench_e5_scalability --benchmark_filter=Threads
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "arch/chip_config.hpp"
#include "sim/controller_registry.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

using namespace odrl;

namespace {

/// Builds a chip + one observed epoch at the given core count.
struct Fixture {
  explicit Fixture(std::size_t cores, sim::SimConfig sim = {})
      : chip(arch::ChipConfig::make(cores, 0.6)),
        system(chip,
               std::make_unique<workload::GeneratedWorkload>(
                   workload::GeneratedWorkload::mixed_suite(cores, 42)),
               sim) {
    const std::vector<std::size_t> levels(cores, chip.vf_table().size() / 2);
    obs = system.step(levels);
  }

  arch::ChipConfig chip;
  sim::ManyCoreSystem system;
  sim::EpochResult obs;
};

template <typename MakeController>
void run_decide_benchmark(benchmark::State& state, MakeController make) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  Fixture fx(cores);
  auto controller = make(fx.chip);
  // Prime internal state (first decide may lazily initialize).
  benchmark::DoNotOptimize(controller->decide(fx.obs));
  for (auto _ : state) {
    auto levels = controller->decide(fx.obs);
    benchmark::DoNotOptimize(levels);
  }
  state.SetComplexityN(state.range(0));
}

void BM_OdrlDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return sim::make_controller("OD-RL", chip);
  });
}

void BM_GreedyDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return sim::make_controller("Greedy", chip);
  });
}

void BM_MaxBipsDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return sim::make_controller("MaxBIPS", chip);
  });
}

void BM_PidDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return sim::make_controller("PID", chip);
  });
}

// ---------------------------------------------------------------------
// Thread-count sweeps: args = (cores, threads).

sim::SimConfig threaded_sim(std::size_t threads) {
  sim::SimConfig cfg;
  cfg.threads = threads;
  cfg.sensor_noise_rel = 0.05;  // exercise the per-core noise substreams
  return cfg;
}

/// Simulator epoch (perf/power/thermal/sensors) wall time.
void BM_StepThreads(benchmark::State& state) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  Fixture fx(cores, threaded_sim(threads));
  const std::vector<std::size_t> levels(cores, fx.chip.vf_table().size() / 2);
  for (auto _ : state) {
    auto obs = fx.system.step(levels);
    benchmark::DoNotOptimize(obs);
  }
  state.counters["threads"] = static_cast<double>(threads);
}

/// OD-RL decide (per-core TD act/learn) wall time.
void BM_OdrlDecideThreads(benchmark::State& state) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  Fixture fx(cores, threaded_sim(threads));
  auto controller = sim::make_controller(
      "OD-RL", fx.chip, {{"threads", std::to_string(threads)}});
  benchmark::DoNotOptimize(controller->decide(fx.obs));
  for (auto _ : state) {
    auto levels = controller->decide(fx.obs);
    benchmark::DoNotOptimize(levels);
  }
  state.counters["threads"] = static_cast<double>(threads);
}

/// One full control epoch: step + decide, the closed loop's unit of wall
/// time. The 8-vs-1-thread ratio of this benchmark at 256 cores is the
/// headline speedup of the parallel epoch engine.
void BM_EpochThreads(benchmark::State& state) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  Fixture fx(cores, threaded_sim(threads));
  auto controller = sim::make_controller(
      "OD-RL", fx.chip, {{"threads", std::to_string(threads)}});
  std::vector<std::size_t> levels = controller->initial_levels(cores);
  for (auto _ : state) {
    const auto obs = fx.system.step(levels);
    levels = controller->decide(obs);
    benchmark::DoNotOptimize(levels);
  }
  state.counters["threads"] = static_cast<double>(threads);
}

}  // namespace

BENCHMARK(BM_OdrlDecide)->RangeMultiplier(2)->Range(16, 1024)->Complexity();
BENCHMARK(BM_GreedyDecide)->RangeMultiplier(2)->Range(16, 1024)->Complexity();
// MaxBIPS stops at 256 cores: its knapsack DP is O(n^2 * levels) once the
// power-axis resolution scales with n (see MaxBipsConfig), and beyond a few
// hundred cores a single decision takes ~1 s of wall time -- which is the
// paper's point, and would also make this harness unreasonably slow.
BENCHMARK(BM_MaxBipsDecide)->RangeMultiplier(2)->Range(16, 256)->Complexity();
BENCHMARK(BM_PidDecide)->RangeMultiplier(2)->Range(16, 1024)->Complexity();

// Thread sweeps at the paper's "hundreds of cores" operating point (plus a
// 1024-core stress point for the full epoch). UseRealTime: the work happens
// on pool workers, so CPU time of the driving thread would under-report.
BENCHMARK(BM_StepThreads)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->UseRealTime();
BENCHMARK(BM_OdrlDecideThreads)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->UseRealTime();
BENCHMARK(BM_EpochThreads)
    ->ArgsProduct({{256, 1024}, {1, 2, 4, 8}})
    ->UseRealTime();

BENCHMARK_MAIN();
