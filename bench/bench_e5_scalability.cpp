// E5 -- controller decision-latency scalability (the paper's
// "two orders of magnitude speedup ... for systems with hundreds of cores").
//
// Times one decide() call of each controller as a function of core count.
// The EpochResult fed to the controllers is produced by a real simulator
// epoch so predictions operate on realistic sensor values; only decide() is
// inside the timed region, matching how the runner attributes decision time.
//
// Expected shape: OD-RL scales ~linearly with a tiny constant; MaxBIPS's
// knapsack DP pays O(n * levels * bins) and lands 100x+ above OD-RL at 256+
// cores; Greedy sits in between.
#include <benchmark/benchmark.h>

#include <memory>

#include "arch/chip_config.hpp"
#include "baselines/greedy_controller.hpp"
#include "baselines/maxbips_controller.hpp"
#include "baselines/pid_controller.hpp"
#include "core/odrl_controller.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

using namespace odrl;

namespace {

/// Builds a chip + one observed epoch at the given core count.
struct Fixture {
  explicit Fixture(std::size_t cores)
      : chip(arch::ChipConfig::make(cores, 0.6)),
        system(chip,
               std::make_unique<workload::GeneratedWorkload>(
                   workload::GeneratedWorkload::mixed_suite(cores, 42)),
               sim::SimConfig{}) {
    const std::vector<std::size_t> levels(cores, chip.vf_table().size() / 2);
    obs = system.step(levels);
  }

  arch::ChipConfig chip;
  sim::ManyCoreSystem system;
  sim::EpochResult obs;
};

template <typename MakeController>
void run_decide_benchmark(benchmark::State& state, MakeController make) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  Fixture fx(cores);
  auto controller = make(fx.chip);
  // Prime internal state (first decide may lazily initialize).
  benchmark::DoNotOptimize(controller->decide(fx.obs));
  for (auto _ : state) {
    auto levels = controller->decide(fx.obs);
    benchmark::DoNotOptimize(levels);
  }
  state.SetComplexityN(state.range(0));
}

void BM_OdrlDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return std::make_unique<core::OdrlController>(chip);
  });
}

void BM_GreedyDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return std::make_unique<baselines::GreedyController>(chip);
  });
}

void BM_MaxBipsDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return std::make_unique<baselines::MaxBipsController>(chip);
  });
}

void BM_PidDecide(benchmark::State& state) {
  run_decide_benchmark(state, [](const arch::ChipConfig& chip) {
    return std::make_unique<baselines::PidController>(chip);
  });
}

}  // namespace

BENCHMARK(BM_OdrlDecide)->RangeMultiplier(2)->Range(16, 1024)->Complexity();
BENCHMARK(BM_GreedyDecide)->RangeMultiplier(2)->Range(16, 1024)->Complexity();
// MaxBIPS stops at 256 cores: its knapsack DP is O(n^2 * levels) once the
// power-axis resolution scales with n (see MaxBipsConfig), and beyond a few
// hundred cores a single decision takes ~1 s of wall time -- which is the
// paper's point, and would also make this harness unreasonably slow.
BENCHMARK(BM_MaxBipsDecide)->RangeMultiplier(2)->Range(16, 256)->Complexity();
BENCHMARK(BM_PidDecide)->RangeMultiplier(2)->Range(16, 1024)->Complexity();

BENCHMARK_MAIN();
