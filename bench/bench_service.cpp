// Control-plane service throughput sweep: sessions x workers, measuring
// session-epochs per second through the full loopback stack (tenant sim
// step -> wire encode -> server decode/decide -> wire encode -> client
// decode), with machine-readable output: BENCH_service.json.
//
// One driver thread pipelines every tenant's StepEpoch each round (post
// all, then complete all), so with workers > 1 the server's drain tasks
// overlap across connections while each session's decision stream stays
// bit-identical -- the property the soak test enforces; this bench only
// prices it.
//
// Output path: ODRL_BENCH_JSON=<path> (default BENCH_service.json; empty
// string disables writing).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/server.hpp"

using namespace odrl;

namespace {

struct Row {
  std::size_t sessions;
  std::size_t cores;
  std::size_t workers;
  std::size_t epochs;  ///< epochs stepped per session
  double wall_s;
  double epochs_per_s;  ///< sessions * epochs / wall
  std::uint64_t requests;
};

constexpr int kRounds = 2;  // best-of-2: min wall time
constexpr std::size_t kCores = 4;

std::size_t epochs_for(std::size_t sessions) {
  // Keep each cell around 20k+ session-epochs (a few hundred ms): cells
  // much shorter than that ratchet timer noise, not throughput.
  if (sessions >= 256) return 96;
  if (sessions >= 64) return 384;
  return 1024;
}

Row bench_cell(std::size_t sessions, std::size_t workers) {
  const std::size_t epochs = epochs_for(sessions);
  Row row{sessions, kCores, workers, epochs, 1e300, 0.0, 0};

  for (int round = 0; round < kRounds; ++round) {
    service::ServerConfig config;
    config.workers = workers;
    config.max_sessions = sessions;
    service::Server server(config);

    std::vector<std::unique_ptr<service::LoopbackClient>> clients;
    std::vector<std::unique_ptr<service::Tenant>> tenants;
    clients.reserve(sessions);
    tenants.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      clients.push_back(std::make_unique<service::LoopbackClient>(server));
      service::TenantConfig tc;
      tc.controller = (i % 2 == 0) ? "OD-RL" : "PID";
      tc.cores = kCores;
      tc.seed = 100 + i;
      tenants.push_back(
          std::make_unique<service::Tenant>(*clients[i], tc));
    }

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t e = 0; e < epochs; ++e) {
      for (auto& tenant : tenants) tenant->post_step();
      for (auto& tenant : tenants) (void)tenant->complete_step();
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    if (wall < row.wall_s) {
      row.wall_s = wall;
      row.requests = server.stats().requests;
    }
    for (auto& tenant : tenants) (void)tenant->close();
  }

  row.epochs_per_s =
      static_cast<double>(row.sessions * row.epochs) / row.wall_s;
  return row;
}

int write_json(const std::vector<Row>& rows, unsigned cpus) {
  const char* env = std::getenv("ODRL_BENCH_JSON");
  const std::string path = env ? env : "BENCH_service.json";
  if (path.empty()) return 0;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "BENCH_service: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"service\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"cpus\": %u,\n", cpus);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"sessions\": %zu, \"cores\": %zu, \"workers\": %zu, "
                 "\"epochs\": %zu, \"wall_s\": %.4f, "
                 "\"epochs_per_s\": %.1f, \"requests\": %llu}%s\n",
                 r.sessions, r.cores, r.workers, r.epochs, r.wall_s,
                 r.epochs_per_s,
                 static_cast<unsigned long long>(r.requests),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::printf("BENCH_service: wrote %s (%zu rows)\n", path.c_str(),
              rows.size());
  return 0;
}

}  // namespace

int main() {
  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("BENCH_service: %u hardware threads\n", cpus);

  std::vector<Row> rows;
  for (std::size_t sessions :
       {std::size_t{16}, std::size_t{64}, std::size_t{256}}) {
    for (std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      rows.push_back(bench_cell(sessions, workers));
    }
  }

  std::printf("%9s %6s %8s %7s %9s %13s %9s\n", "sessions", "cores",
              "workers", "epochs", "wall_s", "epochs_per_s", "requests");
  for (const Row& r : rows) {
    std::printf("%9zu %6zu %8zu %7zu %9.3f %13.1f %9llu\n", r.sessions,
                r.cores, r.workers, r.epochs, r.wall_s, r.epochs_per_s,
                static_cast<unsigned long long>(r.requests));
  }
  return write_json(rows, cpus);
}
