// Shared setup for the experiment harness (bench_e1..e7): chip and workload
// construction, controller registry, and the standard measured run.
//
// Methodology shared by all experiments:
//  * every controller is replayed against the *same* recorded workload
//    trace (identical per-epoch inputs, apples to apples);
//  * power/performance sensors carry 2% relative noise (RAPL-class
//    telemetry); evaluation metrics use true power;
//  * runs measure steady state after a warmup equal to the measured
//    length, except the convergence experiment (E6) which measures the
//    ramp itself.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "baselines/greedy_controller.hpp"
#include "baselines/maxbips_controller.hpp"
#include "baselines/pid_controller.hpp"
#include "baselines/static_uniform.hpp"
#include "core/odrl_controller.hpp"
#include "metrics/metrics.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

namespace odrl::bench {

inline constexpr double kSensorNoise = 0.02;
inline constexpr std::uint64_t kSeed = 1;

struct NamedController {
  std::string name;
  std::function<std::unique_ptr<sim::Controller>(const arch::ChipConfig&)>
      make;
};

/// The paper's comparison set, OD-RL first.
inline std::vector<NamedController> standard_controllers() {
  return {
      {"OD-RL",
       [](const arch::ChipConfig& c) {
         return std::make_unique<core::OdrlController>(c);
       }},
      {"PID",
       [](const arch::ChipConfig& c) {
         return std::make_unique<baselines::PidController>(c);
       }},
      {"Greedy",
       [](const arch::ChipConfig& c) {
         return std::make_unique<baselines::GreedyController>(c);
       }},
      {"MaxBIPS",
       [](const arch::ChipConfig& c) {
         return std::make_unique<baselines::MaxBipsController>(c);
       }},
      {"Static",
       [](const arch::ChipConfig& c) {
         return std::make_unique<baselines::StaticUniformController>(c);
       }},
  };
}

/// Records a trace of the given workload profile set.
inline workload::RecordedTrace record_trace(
    std::size_t cores, std::size_t epochs,
    const std::vector<workload::BenchmarkProfile>& profiles,
    std::uint64_t seed = kSeed) {
  workload::GeneratedWorkload gen(cores, profiles, seed);
  return gen.record(epochs);
}

inline workload::RecordedTrace record_mixed_trace(std::size_t cores,
                                                  std::size_t epochs,
                                                  std::uint64_t seed = kSeed) {
  workload::GeneratedWorkload gen =
      workload::GeneratedWorkload::mixed_suite(cores, seed);
  return gen.record(epochs);
}

/// Runs one controller over a recorded trace with standard settings.
inline sim::RunResult run_measured(const arch::ChipConfig& chip,
                                   const workload::RecordedTrace& trace,
                                   sim::Controller& controller,
                                   std::size_t epochs,
                                   std::size_t warmup_epochs,
                                   std::vector<sim::BudgetEvent> events = {}) {
  sim::SimConfig sc;
  sc.sensor_noise_rel = kSensorNoise;
  sim::ManyCoreSystem system(
      chip, std::make_unique<workload::ReplayWorkload>(trace), sc);
  sim::RunConfig rc;
  rc.epochs = epochs;
  rc.warmup_epochs = warmup_epochs;
  rc.budget_events = std::move(events);
  return sim::run_closed_loop(system, controller, rc);
}

/// Standard comparison: all controllers on one trace; returns results in
/// registry order.
inline std::vector<sim::RunResult> run_all(const arch::ChipConfig& chip,
                                           const workload::RecordedTrace& trace,
                                           std::size_t epochs,
                                           std::size_t warmup_epochs) {
  std::vector<sim::RunResult> results;
  for (const auto& entry : standard_controllers()) {
    auto controller = entry.make(chip);
    results.push_back(
        run_measured(chip, trace, *controller, epochs, warmup_epochs));
  }
  return results;
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n\n");
}

}  // namespace odrl::bench
