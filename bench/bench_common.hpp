// Shared setup for the experiment harness (bench_e1..e10): chip and
// workload construction, the standard controller line-up, and the standard
// measured run.
//
// Methodology shared by all experiments:
//  * every controller is replayed against the *same* recorded workload
//    trace (identical per-epoch inputs, apples to apples);
//  * power/performance sensors carry 2% relative noise (RAPL-class
//    telemetry); evaluation metrics use true power;
//  * runs measure steady state after a warmup equal to the measured
//    length, except the convergence experiment (E6) which measures the
//    ramp itself.
//
// Telemetry: set ODRL_TRACE_DIR=<dir> to make every run_measured() call
// write a per-run JSONL trace (<dir>/<experiment>_<controller>_<k>.jsonl)
// through a telemetry::Recorder. Recording is observational -- results are
// bit-identical with it on or off.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "metrics/metrics.hpp"
#include "sim/controller_registry.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "telemetry/jsonl_sink.hpp"
#include "telemetry/recorder.hpp"
#include "workload/workload.hpp"

namespace odrl::bench {

inline constexpr double kSensorNoise = 0.02;
inline constexpr std::uint64_t kSeed = 1;

struct NamedController {
  std::string name;
  std::function<std::unique_ptr<sim::Controller>(const arch::ChipConfig&)>
      make;
};

/// The paper's comparison set, OD-RL first (presentation order; the
/// registry itself sorts alphabetically). Every controller is built
/// through the registry -- benches never hand-wire constructors.
inline std::vector<NamedController> standard_controllers() {
  std::vector<NamedController> out;
  for (const char* name : {"OD-RL", "PID", "Greedy", "MaxBIPS", "Static"}) {
    out.push_back({name, [name](const arch::ChipConfig& c) {
                     return sim::make_controller(name, c);
                   }});
  }
  return out;
}

/// Tag prepended to trace file names; print_header() sets it from the
/// experiment title ("E1", "E5", ...).
inline std::string& experiment_tag() {
  static std::string tag = "bench";
  return tag;
}

inline std::string sanitize_file_tag(const std::string& s) {
  std::string out;
  for (char c : s) {
    out.push_back(
        std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out.empty() ? std::string("run") : out;
}

/// Records a trace of the given workload profile set.
inline workload::RecordedTrace record_trace(
    std::size_t cores, std::size_t epochs,
    const std::vector<workload::BenchmarkProfile>& profiles,
    std::uint64_t seed = kSeed) {
  workload::GeneratedWorkload gen(cores, profiles, seed);
  return gen.record(epochs);
}

inline workload::RecordedTrace record_mixed_trace(std::size_t cores,
                                                  std::size_t epochs,
                                                  std::uint64_t seed = kSeed) {
  workload::GeneratedWorkload gen =
      workload::GeneratedWorkload::mixed_suite(cores, seed);
  return gen.record(epochs);
}

/// Runs one controller over a recorded trace with standard settings. With
/// ODRL_TRACE_DIR set, the run is recorded to a fresh JSONL file there.
inline sim::RunResult run_measured(const arch::ChipConfig& chip,
                                   const workload::RecordedTrace& trace,
                                   sim::Controller& controller,
                                   std::size_t epochs,
                                   std::size_t warmup_epochs,
                                   std::vector<sim::BudgetEvent> events = {}) {
  sim::SimConfig sc;
  sc.sensor_noise_rel = kSensorNoise;
  sim::ManyCoreSystem system(
      chip, std::make_unique<workload::ReplayWorkload>(trace), sc);
  sim::RunConfig rc;
  rc.epochs = epochs;
  rc.warmup_epochs = warmup_epochs;
  rc.budget_events = std::move(events);

  telemetry::Recorder recorder;
  std::ofstream trace_out;
  const char* trace_dir = std::getenv("ODRL_TRACE_DIR");
  if (trace_dir != nullptr && *trace_dir != '\0') {
    static int run_counter = 0;  // distinguishes repeat runs per process
    const std::string path = std::string(trace_dir) + "/" +
                             experiment_tag() + "_" +
                             sanitize_file_tag(controller.name()) + "_" +
                             std::to_string(run_counter++) + ".jsonl";
    trace_out.open(path);
    if (trace_out) {
      recorder.add_sink(std::make_shared<telemetry::JsonlSink>(trace_out));
      rc.recorder = &recorder;
    } else {
      std::fprintf(stderr, "warning: cannot open trace file %s\n",
                   path.c_str());
    }
  }
  return sim::run_closed_loop(system, controller, rc);
}

/// Standard comparison: all controllers on one trace; returns results in
/// line-up order.
inline std::vector<sim::RunResult> run_all(const arch::ChipConfig& chip,
                                           const workload::RecordedTrace& trace,
                                           std::size_t epochs,
                                           std::size_t warmup_epochs) {
  std::vector<sim::RunResult> results;
  for (const auto& entry : standard_controllers()) {
    auto controller = entry.make(chip);
    results.push_back(
        run_measured(chip, trace, *controller, epochs, warmup_epochs));
  }
  return results;
}

inline void print_header(const char* experiment, const char* claim) {
  // "E5: decision latency..." -> trace tag "E5".
  std::string tag;
  for (const char* p = experiment;
       *p != '\0' && std::isalnum(static_cast<unsigned char>(*p)); ++p) {
    tag.push_back(*p);
  }
  if (!tag.empty()) experiment_tag() = tag;
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n\n");
}

}  // namespace odrl::bench
