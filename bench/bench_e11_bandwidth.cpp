// E11 (extension) -- DVFS control at the bandwidth wall.
//
// With shared-DRAM contention enabled, aggregate miss traffic saturates the
// memory controller and every core's exposed latency inflates: frequency
// buys even less than the per-core CPI stack suggests, and the wasted watts
// should be shed. Sweeps DRAM peak bandwidth from unlimited down to a hard
// wall on a memory-heavy 32-core mix and compares OD-RL with the
// budget-filling Greedy baseline and Static.
//
// Expected shape: as bandwidth tightens, everyone's BIPS drops (physics),
// but OD-RL's *power* drops with it -- its agents observe the inflated
// stall fractions and stop paying for frequency -- while Greedy keeps
// packing the full power budget for ever-smaller returns, so the BIPS/W
// gap between them widens.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace odrl;

int main() {
  bench::print_header(
      "E11 (extension): DVFS under a shared-DRAM bandwidth wall (32 cores)",
      "a model-free controller sheds watts that stop buying throughput");

  constexpr std::size_t kCores = 32;
  constexpr std::size_t kWarmup = 2500;
  constexpr std::size_t kEpochs = 2500;
  // GB/s sweep: 0 = unlimited, then progressively tighter walls.
  const double peaks[] = {0.0, 120.0, 60.0, 30.0};

  const arch::ChipConfig chip = arch::ChipConfig::make(kCores, 0.6);
  // Memory-heavy mix: every other core streams; the rest are mixed.
  const std::vector<workload::BenchmarkProfile> tenants{
      workload::benchmark_by_name("memory.stream"),
      workload::benchmark_by_name("mixed.balanced"),
      workload::benchmark_by_name("memory.pointer"),
      workload::benchmark_by_name("compute.dense")};
  const auto trace =
      bench::record_trace(kCores, kWarmup + kEpochs, tenants);

  util::Table table({"DRAM[GB/s]", "controller", "BIPS", "power[W]",
                     "BIPS/W", "OTB[J]"});

  for (double peak : peaks) {
    for (const auto& entry : bench::standard_controllers()) {
      if (entry.name == "PID" || entry.name == "MaxBIPS") continue;
      auto controller = entry.make(chip);
      sim::SimConfig sc;
      sc.sensor_noise_rel = bench::kSensorNoise;
      sc.dram.peak_gbps = peak;
      sim::ManyCoreSystem system(
          chip, std::make_unique<workload::ReplayWorkload>(trace), sc);
      sim::RunConfig rc;
      rc.epochs = kEpochs;
      rc.warmup_epochs = kWarmup;

      const auto run = sim::run_closed_loop(system, *controller, rc);
      table.add_row(
          {peak == 0.0 ? std::string("unlimited") : util::Table::fmt(peak, 0),
           entry.name, util::Table::fmt(run.bips(), 2),
           util::Table::fmt(run.mean_power_w, 1),
           util::Table::fmt(run.bips_per_watt(), 3),
           util::Table::fmt(run.otb_energy_j, 3)});
    }
  }
  std::printf("%s\n",
              table.render("memory-heavy mix under a DRAM roofline").c_str());
  return 0;
}
