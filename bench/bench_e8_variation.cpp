// E8 (extension) -- process variation vs. controller class.
//
// Sweeps within-die variation strength (log-normal leakage sigma) and runs
// every controller on the *same fabricated chip instance* and workload
// trace. Baselines predict power from nominal datasheet constants, so on a
// varied chip their per-core predictions are biased and budget-filling
// turns the bias into overshoot. OD-RL is model-free -- it reads measured
// watts -- so variation costs it nothing. This connects the paper to the
// variability-aware DVFS line it cites (Herbert & Marculescu, HPCA'09).
//
// Expected shape: baseline OTB energy grows steeply with sigma; OD-RL's
// stays near zero; throughput ordering is unchanged.
#include <cstdio>
#include <memory>
#include <vector>

#include "arch/variation.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace odrl;

int main() {
  bench::print_header(
      "E8 (extension): within-die process variation sweep (16 cores)",
      "model-free control is immune to model bias from process variation");

  constexpr std::size_t kCores = 16;
  constexpr std::size_t kWarmup = 2500;
  constexpr std::size_t kEpochs = 2500;
  const double sigmas[] = {0.0, 0.1, 0.2, 0.3};

  const arch::ChipConfig chip = arch::ChipConfig::make(kCores, 0.6);
  const auto trace = bench::record_mixed_trace(kCores, kWarmup + kEpochs);
  const auto controllers = bench::standard_controllers();

  util::Table table({"leak sigma", "controller", "BIPS", "power[W]",
                     "OTB[J]", "peak_over[W]"});

  for (double sigma : sigmas) {
    arch::VariationConfig vcfg;
    vcfg.leakage_sigma = sigma;
    vcfg.c_eff_sigma = sigma / 3.0;
    vcfg.seed = 77;
    const auto map =
        sigma == 0.0
            ? arch::VariationMap::none(kCores)
            : arch::VariationMap::sample(chip.mesh(), kCores, vcfg);

    for (const auto& entry : controllers) {
      auto controller = entry.make(chip);
      sim::SimConfig sc;
      sc.sensor_noise_rel = bench::kSensorNoise;
      sim::ManyCoreSystem system(
          chip, std::make_unique<workload::ReplayWorkload>(trace), sc, map);
      sim::RunConfig rc;
      rc.epochs = kEpochs;
      rc.warmup_epochs = kWarmup;
      const auto run = sim::run_closed_loop(system, *controller, rc);
      table.add_row({util::Table::fmt(sigma, 2), entry.name,
                     util::Table::fmt(run.bips(), 2),
                     util::Table::fmt(run.mean_power_w, 1),
                     util::Table::fmt(run.otb_energy_j, 3),
                     util::Table::fmt(run.peak_overshoot_w, 2)});
    }
  }
  std::printf("%s\n",
              table.render("controllers on one varied chip instance per "
                           "sigma; baselines predict with nominal constants")
                  .c_str());
  return 0;
}
