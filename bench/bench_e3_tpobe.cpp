// E3 -- throughput per over-the-budget energy (abstract claim: "up to 44.3x
// better throughput per over-the-budget energy").
//
// TPOBE = instructions retired / joules spent above the budget: it rewards
// controllers that convert any overshoot they do commit into performance.
// Swept over three budget levels on the mixed suite (tighter budgets stress
// the prediction-based baselines harder). Zero-overshoot runs are floored
// at 1 mJ, which *understates* OD-RL's ratio -- the conservative direction.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace odrl;

int main() {
  bench::print_header(
      "E3: throughput per over-the-budget energy (16 cores, mixed suite)",
      "up to 44.3x better throughput per over-the-budget energy");

  constexpr std::size_t kCores = 16;
  constexpr std::size_t kWarmup = 2500;
  constexpr std::size_t kEpochs = 2500;
  const double budgets[] = {0.5, 0.6, 0.75};

  const auto controllers = bench::standard_controllers();
  util::Table table({"budget", "controller", "BIPS", "OTB[J]",
                     "TPOBE[GI/J]", "vs OD-RL"});

  for (double frac : budgets) {
    const arch::ChipConfig chip = arch::ChipConfig::make(kCores, frac);
    const auto trace = bench::record_mixed_trace(
        kCores, kWarmup + kEpochs,
        bench::kSeed + static_cast<std::uint64_t>(frac * 100));
    std::vector<sim::RunResult> runs;
    for (const auto& entry : controllers) {
      auto controller = entry.make(chip);
      runs.push_back(
          bench::run_measured(chip, trace, *controller, kEpochs, kWarmup));
    }
    for (std::size_t c = 0; c < runs.size(); ++c) {
      const double ratio = metrics::tpobe_ratio(runs[0], runs[c]);
      table.add_row({util::Table::fmt(frac, 2) + "x", controllers[c].name,
                     util::Table::fmt(runs[c].bips(), 2),
                     util::Table::fmt(runs[c].otb_energy_j, 3),
                     util::Table::fmt(metrics::tpobe(runs[c]) / 1e9, 1),
                     c == 0 ? "1.0x"
                            : util::Table::fmt(ratio, 1) + "x"});
    }
  }
  std::printf("%s\n",
              table.render("TPOBE per budget level ('vs OD-RL' = OD-RL's "
                           "TPOBE advantage over that row)")
                  .c_str());
  return 0;
}
